(* Integration tests for the FleXPath top-K algorithms and ranking
   schemes. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Query = Tpq.Query
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics
module Ranking = Flexpath.Ranking
module Answer = Flexpath.Answer
module Env = Flexpath.Env

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let q1_str =
  "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"

let xmark_q2 = "//item[./description/parlist and ./mailbox/mail/text]"

let article_env = lazy (Env.make (Xmark.Articles.doc ~seed:21 ~count:80 ()))
let auction_env = lazy (Env.make (Xmark.Auction.doc ~seed:22 ~items:100 ()))

(* ------------------------------------------------------------------ *)
(* Ranking *)

let test_ranking_compare () =
  let mk ss ks = { Ranking.sscore = ss; kscore = ks } in
  let better scheme a b = Ranking.compare_desc scheme a b < 0 in
  check_bool "structure first prefers ss" true
    (better Ranking.Structure_first (mk 3.0 0.1) (mk 2.0 0.9));
  check_bool "structure first ties on ks" true
    (better Ranking.Structure_first (mk 3.0 0.9) (mk 3.0 0.1));
  check_bool "keyword first prefers ks" true
    (better Ranking.Keyword_first (mk 2.0 0.9) (mk 3.0 0.1));
  check_bool "combined sums" true (better Ranking.Combined (mk 2.0 0.9) (mk 2.5 0.1));
  check_bool "total structure" true (Ranking.total Ranking.Structure_first (mk 2.0 0.5) = 2.0);
  check_bool "total combined" true (Ranking.total Ranking.Combined (mk 2.0 0.5) = 2.5)

let test_ranking_strings () =
  List.iter
    (fun s ->
      match Ranking.of_string (Ranking.to_string s) with
      | Ok s' -> check_bool "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    Ranking.all;
  check_bool "unknown rejected" true (Result.is_error (Ranking.of_string "nope"))

let test_algorithm_strings () =
  List.iter
    (fun a ->
      match Flexpath.algorithm_of_string (Flexpath.algorithm_to_string a) with
      | Ok a' -> check_bool "roundtrip" true (a = a')
      | Error e -> Alcotest.fail e)
    Flexpath.all_algorithms

(* ------------------------------------------------------------------ *)
(* Consistency with classical semantics: when the document has at least
   K exact matches, flexible top-K returns exact matches only. *)

let test_extends_classical_semantics () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let exact = Flexpath.exact_answers env q in
  let k = min 5 (List.length exact) in
  check_bool "enough exact answers in fixture" true (k >= 3);
  let answers = Flexpath.top_k env ~k q in
  check_int "k answers" k (List.length answers);
  List.iter
    (fun (a : Answer.t) ->
      check_bool "answer is an exact match" true (List.mem a.node exact);
      check_bool "full structural score" true (Float.abs (a.sscore -. 3.0) < 1e-9))
    answers

(* All three algorithms return the same top-K under every scheme. *)
let algorithms_agree env q ~k ~scheme =
  let key (a : Answer.t) =
    (a.Answer.node, Float.round (a.Answer.sscore *. 1e6), Float.round (a.Answer.kscore *. 1e6))
  in
  let run algorithm = List.map key (Flexpath.top_k ~algorithm ~scheme env ~k q) in
  let d = run Flexpath.DPO in
  let s = run Flexpath.SSO in
  let h = run Flexpath.Hybrid in
  (d = s && s = h, d)

let test_algorithms_agree_articles () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  List.iter
    (fun k ->
      List.iter
        (fun scheme ->
          let ok, _ = algorithms_agree env q ~k ~scheme in
          check_bool
            (Printf.sprintf "k=%d scheme=%s" k (Ranking.to_string scheme))
            true ok)
        [ Ranking.Structure_first; Ranking.Combined ])
    [ 1; 5; 20; 60 ]

let test_algorithms_agree_keyword_first () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let ok, _ = algorithms_agree env q ~k:10 ~scheme:Ranking.Keyword_first in
  check_bool "keyword-first agreement" true ok

let test_algorithms_agree_auction () =
  let env = Lazy.force auction_env in
  let q = Xpath.parse_exn xmark_q2 in
  List.iter
    (fun k ->
      let ok, _ = algorithms_agree env q ~k ~scheme:Ranking.Structure_first in
      check_bool (Printf.sprintf "xmark k=%d" k) true ok)
    [ 5; 25; 80 ]

(* Relaxed answers rank strictly below exact ones under
   structure-first — the Relevance Scoring property (§4.2). *)
let test_relevance_scoring_property () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let exact = Flexpath.exact_answers env q in
  let k = List.length exact + 10 in
  let answers = Flexpath.top_k env ~k q in
  check_bool "more than exact" true (List.length answers > List.length exact);
  List.iter
    (fun (a : Answer.t) ->
      if List.mem a.node exact then
        check_bool "exact answers have the top structural score" true
          (Float.abs (a.sscore -. 3.0) < 1e-9)
      else check_bool "relaxed answers score lower" true (a.sscore < 3.0 -. 1e-9))
    answers

(* Top-K answers are sorted best-first under the chosen scheme. *)
let test_answers_sorted () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  List.iter
    (fun scheme ->
      let answers = Flexpath.top_k ~scheme env ~k:30 q in
      let rec sorted = function
        | a :: b :: rest ->
          Ranking.compare_desc scheme (Answer.score a) (Answer.score b) <= 0 && sorted (b :: rest)
        | _ -> true
      in
      check_bool (Ranking.to_string scheme ^ " sorted") true (sorted answers))
    Ranking.all

(* Growing K only extends the answer list. *)
let test_k_monotone () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let a10 = Flexpath.top_k env ~k:10 q in
  let a25 = Flexpath.top_k env ~k:25 q in
  let nodes l = List.map (fun (a : Answer.t) -> a.Answer.node) l in
  let n10 = nodes a10 and n25 = nodes a25 in
  check_bool "prefix preserved" true
    (List.for_all2 (fun a b -> a = b) n10 (List.filteri (fun i _ -> i < 10) n25))

(* Every answer in the flexible top-K satisfies the loosest relaxation:
   it contains the keywords somewhere. *)
let test_all_answers_relevant () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let kw = Ftexp.(Term "xml" &&& Term "streaming") in
  let answers = Flexpath.top_k env ~k:100 q in
  List.iter
    (fun (a : Answer.t) ->
      check_bool "article tag" true (Doc.tag_name env.doc a.node = "article");
      if a.sscore > 0.0 then
        (* answers retaining any contains predicate satisfy the search *)
        check_bool "keywords reachable" true
          (Fulltext.Index.satisfies env.index kw a.node
          || a.kscore = 0.0))
    answers

(* DPO stops early for small K on data with plenty of exact matches,
   and evaluates more relaxations as K grows. *)
let test_dpo_pass_scaling () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let small = Flexpath.Dpo.run env ~scheme:Ranking.Structure_first ~k:3 q in
  let large = Flexpath.Dpo.run env ~scheme:Ranking.Structure_first ~k:60 q in
  check_bool "more passes for larger K" true (large.Flexpath.Common.passes > small.Flexpath.Common.passes)

(* SSO evaluates a single pass when the estimator is adequate. *)
let test_sso_single_pass () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let r = Flexpath.Sso.run env ~scheme:Ranking.Structure_first ~k:20 q in
  check_bool "one or two passes" true (r.Flexpath.Common.passes <= 2);
  check_bool "sorting happened" true (r.Flexpath.Common.metrics.Joins.Exec.score_sorted_tuples > 0)

(* Hybrid buckets instead of sorting. *)
let test_hybrid_buckets_no_sort () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let r = Flexpath.Hybrid.run env ~scheme:Ranking.Structure_first ~k:20 q in
  check_int "no score sorting" 0 r.Flexpath.Common.metrics.Joins.Exec.score_sorted_tuples;
  check_bool "buckets used" true (r.Flexpath.Common.metrics.Joins.Exec.buckets_touched > 0)

(* top_k_xpath round trip and error path *)
let test_top_k_xpath () =
  let env = Lazy.force article_env in
  (match Flexpath.top_k_xpath env ~k:3 q1_str with
  | Ok answers -> check_int "three answers" 3 (List.length answers)
  | Error e -> Alcotest.fail (Flexpath.Error.to_string e));
  check_bool "syntax error surfaces" true (Result.is_error (Flexpath.top_k_xpath env ~k:3 "//["))

(* Kth answer scores dominate any dropped candidate: compare against a
   brute-force evaluation over the enumerated relaxation space. *)
let test_topk_against_bruteforce () =
  let tree =
    Xml.element "c"
      [
        Xml.element "article"
          [
            Xml.element "section"
              [
                Xml.element "algorithm" [];
                Xml.element "paragraph" [ Xml.text "xml streaming fun" ];
              ];
          ];
        Xml.element "article"
          [ Xml.element "section" [ Xml.element "paragraph" [ Xml.text "xml streaming" ] ] ];
        Xml.element "article" [ Xml.element "abstract" [ Xml.text "xml streaming" ] ];
        Xml.element "article" [ Xml.element "section" [ Xml.element "paragraph" [ Xml.text "none" ] ] ];
      ]
  in
  let env = Env.of_tree tree in
  let q = Xpath.parse_exn q1_str in
  let answers = Flexpath.top_k env ~k:3 q in
  (* article ids: 1, 6, 10, 14 — expect the exact match first, then the
     no-algorithm one, then the abstract-only one *)
  let nodes = List.map (fun (a : Answer.t) -> a.Answer.node) answers in
  check_int "three answers" 3 (List.length nodes);
  check_int "exact first" 1 (List.hd nodes);
  let scores = List.map (fun (a : Answer.t) -> a.Answer.sscore) answers in
  let rec strictly_decreasing = function
    | a :: b :: rest -> a > b -. 1e-12 && strictly_decreasing (b :: rest)
    | _ -> true
  in
  check_bool "scores non-increasing" true (strictly_decreasing scores)

(* ------------------------------------------------------------------ *)
(* Storage *)

let test_storage_roundtrip () =
  let env = Lazy.force article_env in
  let path = Filename.temp_file "flexpath" ".env" in
  (match Flexpath.Storage.save env path with
  | Error e -> Alcotest.fail (Flexpath.Error.to_string e)
  | Ok () -> ());
  (match Flexpath.Storage.load path with
  | Error e -> Alcotest.fail (Flexpath.Error.to_string e)
  | Ok (env', outcome) ->
    check_bool "clean snapshot loads intact" true (outcome = Flexpath.Storage.Intact);
    let q = Xpath.parse_exn q1_str in
    let key (a : Answer.t) = (a.node, Float.round (a.sscore *. 1e6)) in
    check_bool "same answers after reload" true
      (List.map key (Flexpath.top_k env ~k:15 q) = List.map key (Flexpath.top_k env' ~k:15 q)));
  Sys.remove path

let test_storage_rejects_foreign_files () =
  let path = Filename.temp_file "flexpath" ".env" in
  let oc = open_out path in
  output_string oc "<xml>not an env</xml>";
  close_out oc;
  (match Flexpath.Storage.load path with
  | Error (Flexpath.Error.Snapshot_error { corruption = Flexpath.Error.Bad_magic; _ }) -> ()
  | Error e -> Alcotest.failf "expected Bad_magic, got %s" (Flexpath.Error.to_string e)
  | Ok _ -> Alcotest.fail "accepted a foreign file");
  Sys.remove path;
  check_bool "missing file rejected" true
    (Result.is_error (Flexpath.Storage.load "/nonexistent/path.env"))

(* ------------------------------------------------------------------ *)
(* Property: the three algorithms return identical top-K lists on
   random tree pattern queries over generated data, for every ranking
   scheme.  This is the strongest cross-cutting invariant of the
   system. *)

let gen_random_query =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "article"; "section"; "paragraph"; "algorithm"; "title"; "abstract" ] in
  let kw_gen = oneofl [ "xml"; "streaming"; "algorithm"; "query" ] in
  let node_gen =
    let* t = tag_gen in
    let* n_kw = oneofl [ 0; 0; 1 ] in
    let* ws = list_repeat n_kw kw_gen in
    return (Query.node_spec ~tag:t ~contains:(List.map Ftexp.term ws) ())
  in
  let* n_nodes = 1 -- 4 in
  let* nodes = list_repeat n_nodes node_gen in
  let* axes = list_repeat n_nodes (oneofl [ Query.Child; Query.Descendant ]) in
  let* parents =
    flatten_l (List.init n_nodes (fun i -> if i = 0 then return 0 else 0 -- (i - 1)))
  in
  let nodes = List.mapi (fun i n -> (i + 1, n)) nodes in
  let edges =
    List.concat
      (List.mapi
         (fun i (p, a) -> if i = 0 then [] else [ (p + 1, i + 1, a) ])
         (List.combine parents axes))
  in
  let* dist = 1 -- n_nodes in
  match Query.make ~root:1 ~nodes ~edges ~distinguished:dist with
  | Ok q -> return q
  | Error _ -> assert false

let prop_env = lazy (Env.make (Xmark.Articles.doc ~seed:77 ~count:25 ()))

(* Definition 4's top-K is a set of K highest-scored answers; when
   several answers tie at the K-th score, any of them may fill the last
   slots.  The invariant all algorithms must share: identical ranked
   score lists, and identical answer sets strictly above the K-th
   score. *)
let score_key (a : Answer.t) =
  (Float.round (a.sscore *. 1e6), Float.round (a.kscore *. 1e6))

let above_kth scheme answers =
  match List.rev answers with
  | [] -> []
  | last :: _ ->
    let kth = Ranking.total scheme (Answer.score last) in
    List.filter (fun a -> Ranking.total scheme (Answer.score a) > kth +. 1e-7) answers
    |> List.map (fun (a : Answer.t) -> a.Answer.node)
    |> List.sort Int.compare

let prop_algorithms_agree =
  QCheck2.Test.make ~name:"DPO = SSO = Hybrid on random queries, all schemes" ~count:40
    (QCheck2.Gen.pair gen_random_query (QCheck2.Gen.oneofl [ 3; 10; 40 ]))
    (fun (q, k) ->
      let env = Lazy.force prop_env in
      List.for_all
        (fun scheme ->
          let run algorithm = Flexpath.top_k ~algorithm ~scheme env ~k q in
          let d = run Flexpath.DPO and s = run Flexpath.SSO and h = run Flexpath.Hybrid in
          let scores l = List.map score_key l in
          scores d = scores s && scores s = scores h
          && above_kth scheme d = above_kth scheme s
          && above_kth scheme s = above_kth scheme h)
        [ Ranking.Structure_first; Ranking.Combined; Ranking.Keyword_first ])

let prop_topk_prefix_of_all_answers =
  QCheck2.Test.make ~name:"top-k scores are a prefix of the full ranked scores" ~count:30
    gen_random_query (fun q ->
      let env = Lazy.force prop_env in
      let small = Flexpath.top_k env ~k:5 q in
      let large = Flexpath.top_k env ~k:100 q in
      let scores l = List.map score_key l in
      let ss = scores small and sl = scores large in
      List.length ss <= List.length sl
      && List.for_all2 (fun a b -> a = b) ss (List.filteri (fun i _ -> i < List.length ss) sl))

let () =
  Alcotest.run "flexpath"
    [
      ( "ranking",
        [
          Alcotest.test_case "comparisons" `Quick test_ranking_compare;
          Alcotest.test_case "scheme strings" `Quick test_ranking_strings;
          Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "extends classical semantics" `Quick test_extends_classical_semantics;
          Alcotest.test_case "relevance scoring property" `Quick test_relevance_scoring_property;
          Alcotest.test_case "answers sorted" `Quick test_answers_sorted;
          Alcotest.test_case "K monotone" `Quick test_k_monotone;
          Alcotest.test_case "answers relevant" `Quick test_all_answers_relevant;
          Alcotest.test_case "small fixture ordering" `Quick test_topk_against_bruteforce;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "agree on articles" `Quick test_algorithms_agree_articles;
          Alcotest.test_case "agree keyword-first" `Quick test_algorithms_agree_keyword_first;
          Alcotest.test_case "agree on auction data" `Quick test_algorithms_agree_auction;
          Alcotest.test_case "dpo pass scaling" `Quick test_dpo_pass_scaling;
          Alcotest.test_case "sso single pass" `Quick test_sso_single_pass;
          Alcotest.test_case "hybrid buckets" `Quick test_hybrid_buckets_no_sort;
          Alcotest.test_case "xpath entry point" `Quick test_top_k_xpath;
        ] );
      ( "storage",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_storage_roundtrip;
          Alcotest.test_case "rejects foreign files" `Quick test_storage_rejects_foreign_files;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_algorithms_agree;
          QCheck_alcotest.to_alcotest prop_topk_prefix_of_all_answers;
        ] );
    ]
