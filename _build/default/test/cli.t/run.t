The CLI end to end: generate a deterministic document, query it under
each algorithm, show a relaxation chain, and round-trip a saved
environment.

  $ flexpath_cli generate --articles 5 --seed 3 -o articles.xml
  wrote 3106 bytes to articles.xml

  $ flexpath_cli stats --file articles.xml | head -2
  stats: 61 elements, 10 tags, 11 pc pairs, 25 ad entries
  elements: 61

Exact matches first, relaxed answers after, same answers per algorithm:

  $ flexpath_cli query --file articles.xml -k 3 --algo dpo '//article[.contains("xml" and "streaming")]' > dpo.out
  $ flexpath_cli query --file articles.xml -k 3 --algo sso '//article[.contains("xml" and "streaming")]' > sso.out
  $ flexpath_cli query --file articles.xml -k 3 --algo hybrid '//article[.contains("xml" and "streaming")]' > hybrid.out
  $ diff dpo.out sso.out
  $ diff sso.out hybrid.out
  $ head -1 dpo.out
   1. collection[1]/article[2]  ss=0.0000 ks=0.6203  exact

The relaxation chain starts at the original query:

  $ flexpath_cli relax --file articles.xml '//article[./section/paragraph]' | head -2
   0. score=2.0000 penalty=0.0000  (original)
      //article[./section[./paragraph]]

Weights rescale scores:

  $ flexpath_cli query --file articles.xml -k 1 --weights structural=2 '//article[./section/paragraph]' | head -1
   1. collection[1]/article[2]  ss=4.0000 ks=0.0000  exact

Saved environments answer the same queries:

  $ flexpath_cli index --file articles.xml -o articles.env
  indexed 61 elements into articles.env
  $ flexpath_cli query --env articles.env -k 3 '//article[.contains("xml" and "streaming")]' > env.out
  $ diff dpo.out env.out

Errors are reported, not crashes, with distinct exit codes: 2 for
parse errors (query or document), 1 for I/O, configuration and
internal-limit errors.

  $ flexpath_cli query --file articles.xml '//['
  query error: at offset 2: expected a name
  [2]
  $ flexpath_cli query --file missing.xml '//a'
  error: missing.xml: No such file or directory
  [1]
  $ printf '<a>\n  <b></a>' > broken.xml
  $ flexpath_cli query --file broken.xml '//a'
  error: broken.xml: line 2, column 9: mismatched closing tag: expected </b>, got </a>
  [2]
  $ flexpath_cli query --file articles.xml --weights nonsense '//a'
  error: bad weights: expected key=value, got "nonsense"
  [1]
  $ flexpath_cli query --file articles.xml '//a/b/c/d/e/f/g/h/i/j/k/l'
  error: capacity exceeded: scored predicates in the query closure (77 > limit 62)
  [1]

A budget-exceeded query still prints the best-effort answers it
collected, then reports the trip on stderr and exits 3:

  $ flexpath_cli query --file articles.xml -k 5 --algo dpo --step-budget 1 '//article[./section[./algorithm and ./paragraph]]'
   1. collection[1]/article[3]  ss=3.0000 ks=0.0000  exact
   2. collection[1]/article[4]  ss=3.0000 ks=0.0000  exact
  budget exceeded (step budget): 2 partial answers shown; unreported answers score at most 2.0000
  [3]
  $ flexpath_cli query --file articles.xml -k 3 --timeout-ms 0 '//article[./section/paragraph]'
  budget exceeded (deadline): 0 partial answers shown; unreported answers score at most 2.0000
  [3]

Injected faults surface as typed errors end to end:

  $ FLEXPATH_FAILPOINTS=exec.run flexpath_cli query --file articles.xml '//article[./section/paragraph]'
  error: injected fault at exec.run
  [1]
  $ FLEXPATH_FAILPOINTS=index.build flexpath_cli stats --file articles.xml
  error: injected fault at index.build
  [1]
