(* Tests for the XML substrate: parser, serializer, arena document. *)

module Xml = Xmldom.Xml
module Xml_parser = Xmldom.Xml_parser
module Doc = Xmldom.Doc
module Tag = Xmldom.Tag

let el = Xml.element
let txt = Xml.text

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse s =
  match Xml_parser.parse s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" (Format.asprintf "%a" Xml_parser.pp_error e)

(* ------------------------------------------------------------------ *)
(* Xml tree basics *)

let test_escape () =
  check_string "all specials" "&amp;&lt;&gt;&quot;&apos;" (Xml.escape "&<>\"'");
  check_string "no specials untouched" "hello world" (Xml.escape "hello world")

let test_serialize_roundtrip_simple () =
  let t = el "a" [ el "b" [ txt "x & y" ]; el "c" ~attrs:[ ("k", "v\"w") ] [] ] in
  let s = Xml.to_string t in
  check_bool "roundtrip equal" true (Xml.equal t (parse s))

let test_direct_vs_deep_text () =
  let t = el "a" [ txt "x"; el "b" [ txt "y" ]; txt "z" ] in
  check_string "direct" "xz" (Xml.direct_text t);
  check_string "deep" "xyz" (Xml.deep_text t)

let test_count_elements () =
  let t = el "a" [ el "b" [ el "c" [] ]; txt "t"; el "d" [] ] in
  check_int "count" 4 (Xml.count_elements t)

let test_attribute () =
  let t = el "a" ~attrs:[ ("x", "1"); ("y", "2") ] [] in
  check_bool "x found" true (Xml.attribute t "x" = Some "1");
  check_bool "z missing" true (Xml.attribute t "z" = None)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_minimal () =
  let t = parse "<a/>" in
  check_bool "empty element" true (Xml.equal t (el "a" []))

let test_parse_decl_doctype_comments () =
  let s =
    "<?xml version=\"1.0\"?><!DOCTYPE site [<!ELEMENT a (b)>]><!-- c --><a><!-- inner \
     --><b>t</b></a><!-- after -->"
  in
  check_bool "prolog handled" true (Xml.equal (parse s) (el "a" [ el "b" [ txt "t" ] ]))

let test_parse_entities () =
  let t = parse "<a>&amp;&lt;&gt;&quot;&apos;&#65;&#x42;</a>" in
  check_bool "entities decoded" true (Xml.equal t (el "a" [ txt "&<>\"'AB" ]))

let test_parse_cdata () =
  let t = parse "<a><![CDATA[<not> & parsed]]></a>" in
  check_bool "cdata" true (Xml.equal t (el "a" [ txt "<not> & parsed" ]))

let test_parse_attrs () =
  let t = parse "<a x='1' y=\"two &amp; three\"/>" in
  check_bool "attrs" true
    (Xml.attribute t "x" = Some "1" && Xml.attribute t "y" = Some "two & three")

let test_parse_ws_dropped () =
  let t = parse "<a>\n  <b/>\n  <c/>\n</a>" in
  check_bool "whitespace dropped" true (Xml.equal t (el "a" [ el "b" []; el "c" [] ]))

let test_parse_mixed_kept () =
  let t = parse "<p>one <b>two</b> three</p>" in
  check_bool "mixed content" true
    (Xml.equal t (el "p" [ txt "one "; el "b" [ txt "two" ]; txt " three" ]))

let expect_error s =
  match Xml_parser.parse s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error _ -> ()

let test_parse_errors () =
  expect_error "";
  expect_error "<a>";
  expect_error "<a></b>";
  expect_error "<a";
  expect_error "<a>&unknown;</a>";
  expect_error "<a><b></a></b>";
  expect_error "<a/><b/>";
  expect_error "just text"

let contains_substring msg affix =
  let n = String.length msg and m = String.length affix in
  let rec go i = i + m <= n && (String.sub msg i m = affix || go (i + 1)) in
  go 0

let test_parse_error_position () =
  match Xml_parser.parse "<a>\n<b></c>\n</a>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
    check_int "line" 2 e.line;
    check_bool "message mentions tags" true (contains_substring e.message "mismatched")

(* ------------------------------------------------------------------ *)
(* Doc arena *)

let sample_doc () =
  Doc.of_tree
    (el "site"
       [
         el "item" [ el "name" [ txt "gold watch" ]; el "description" [ txt "fine" ] ];
         el "item" [ el "name" [ txt "vase" ] ];
       ])

let test_doc_numbering () =
  let d = sample_doc () in
  check_int "size" 6 (Doc.size d);
  check_int "root" 0 (Doc.root d);
  check_string "root tag" "site" (Doc.tag_name d 0);
  check_string "first item" "item" (Doc.tag_name d 1);
  check_int "root level" 0 (Doc.level d 0);
  check_int "name level" 2 (Doc.level d 2)

let test_doc_containment () =
  let d = sample_doc () in
  check_bool "site anc name" true (Doc.is_ancestor d 0 2);
  check_bool "item1 anc name1" true (Doc.is_ancestor d 1 2);
  check_bool "item1 not anc item2" false (Doc.is_ancestor d 1 4);
  check_bool "not self" false (Doc.is_ancestor d 1 1);
  check_bool "parent" true (Doc.is_parent d 1 2);
  check_bool "not grandparent" false (Doc.is_parent d 0 2)

let test_doc_by_tag () =
  let d = sample_doc () in
  let items = Doc.by_tag_name d "item" in
  check_int "two items" 2 (Array.length items);
  check_bool "sorted" true (items.(0) < items.(1));
  check_int "unknown tag" 0 (Array.length (Doc.by_tag_name d "zzz"))

let test_doc_navigation () =
  let d = sample_doc () in
  check_bool "first child of root" true (Doc.first_child d 0 = Some 1);
  check_bool "next sibling item" true (Doc.next_sibling d 1 = Some 4);
  check_bool "no sibling" true (Doc.next_sibling d 4 = None);
  check_bool "parent of name" true (Doc.parent d 2 = Some 1);
  check_bool "root no parent" true (Doc.parent d 0 = None);
  check_bool "ancestors of name1" true (Doc.ancestors d 2 = [ 1; 0 ])

let test_doc_text () =
  let d = sample_doc () in
  check_string "direct text leaf" "gold watch" (Doc.direct_text d 2);
  check_string "deep text item1" "gold watchfine" (Doc.deep_text d 1);
  check_string "no text" "" (Doc.direct_text d 1)

let test_doc_to_tree_roundtrip () =
  let t = parse "<a x=\"1\">pre<b>in</b>post<c><d/></c></a>" in
  let d = Doc.of_tree t in
  check_bool "tree rebuilt" true (Xml.equal t (Doc.to_tree d))

let test_doc_path () =
  let d = sample_doc () in
  check_string "path" "site[1]/item[2]/name[1]" (Doc.path_to_root d 5)

let test_doc_of_string () =
  match Doc.of_string "<a><b/></a>" with
  | Ok d -> check_int "two elements" 2 (Doc.size d)
  | Error _ -> Alcotest.fail "of_string failed"

(* ------------------------------------------------------------------ *)
(* SAX streaming interface *)

module Sax = Xmldom.Xml_sax

let test_sax_events () =
  match Sax.events "<a x=\"1\">hi<b/></a>" with
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Xml_parser.pp_error e)
  | Ok evs ->
    check_bool "event sequence" true
      (evs
      = [
          Sax.Start_element ("a", [ ("x", "1") ]);
          Sax.Text "hi";
          Sax.Start_element ("b", []);
          Sax.End_element "b";
          Sax.End_element "a";
        ])

let test_sax_fold_counts () =
  let s = Xml.to_string (Xmark.Articles.collection ~seed:4 ~count:5 ()) in
  let count =
    match
      Sax.fold s ~init:0 ~f:(fun acc ev ->
          match ev with Sax.Start_element _ -> acc + 1 | _ -> acc)
    with
    | Ok n -> n
    | Error _ -> -1
  in
  check_int "starts = element count" (Xml.count_elements (parse s)) count

let test_sax_error_propagates () =
  check_bool "mismatched tags error" true (Result.is_error (Sax.events "<a><b></a></b>"))

let test_sax_tree_roundtrip () =
  let t = parse "<a>pre<b k=\"v\">in</b>post</a>" in
  match Sax.events (Xml.to_string t) with
  | Error _ -> Alcotest.fail "events failed"
  | Ok evs -> (
    match Sax.tree_of_events evs with
    | Ok t' -> check_bool "tree rebuilt" true (Xml.equal t t')
    | Error msg -> Alcotest.fail msg)

let test_sax_tree_of_events_errors () =
  let bad evs =
    match Sax.tree_of_events evs with
    | Ok _ -> Alcotest.fail "expected error"
    | Error _ -> ()
  in
  bad [];
  bad [ Sax.Start_element ("a", []) ];
  bad [ Sax.Start_element ("a", []); Sax.End_element "b" ];
  bad [ Sax.Text "floating" ];
  bad
    [
      Sax.Start_element ("a", []); Sax.End_element "a";
      Sax.Start_element ("b", []); Sax.End_element "b";
    ]

(* ------------------------------------------------------------------ *)
(* Tag interning *)

let test_tag_interning () =
  let tbl = Tag.create () in
  let a = Tag.intern tbl "alpha" in
  let b = Tag.intern tbl "beta" in
  check_bool "distinct" true (a <> b);
  check_int "stable" a (Tag.intern tbl "alpha");
  check_string "name back" "beta" (Tag.name tbl b);
  check_int "count" 2 (Tag.count tbl);
  check_bool "find known" true (Tag.find tbl "alpha" = Some a);
  check_bool "find unknown" true (Tag.find tbl "gamma" = None)

let test_tag_growth () =
  let tbl = Tag.create () in
  for i = 0 to 199 do
    ignore (Tag.intern tbl ("t" ^ string_of_int i))
  done;
  check_int "200 tags" 200 (Tag.count tbl);
  check_string "spot check" "t150" (Tag.name tbl (Option.get (Tag.find tbl "t150")))

(* ------------------------------------------------------------------ *)
(* Property tests *)

let gen_tree =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c"; "d" ] in
  let text_gen = map (fun s -> "t" ^ s) (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) in
  let kid_gen self n =
    let* k = self (n / 2) in
    let* with_text = bool in
    if with_text then
      let* t = text_gen in
      return [ k; Xml.Text t ]
    else return [ k ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then map (fun t -> Xml.Element (t, [], [])) tag_gen
      else
        let* t = tag_gen in
        let* kid_lists = list_size (1 -- 3) (kid_gen self n) in
        return (Xml.Element (t, [], List.concat kid_lists)))

let prop_parse_serialize_roundtrip =
  QCheck2.Test.make ~name:"parse(to_string(t)) = t" ~count:200 gen_tree (fun t ->
      match Xml_parser.parse (Xml.to_string t) with
      | Ok t' -> Xml.equal t t'
      | Error _ -> false)

let prop_doc_prepost =
  QCheck2.Test.make ~name:"pre/post containment agrees with parent chains" ~count:100 gen_tree
    (fun t ->
      let d = Doc.of_tree t in
      let ok = ref true in
      Doc.iter_elements d (fun e ->
          List.iter
            (fun a -> if not (Doc.is_ancestor d a e) then ok := false)
            (Doc.ancestors d e));
      !ok)

let prop_doc_tree_roundtrip =
  QCheck2.Test.make ~name:"to_tree(of_tree(t)) = t" ~count:200 gen_tree (fun t ->
      Xml.equal t (Doc.to_tree (Doc.of_tree t)))

let prop_sax_agrees_with_dom =
  QCheck2.Test.make ~name:"SAX events rebuild the DOM tree" ~count:100 gen_tree (fun t ->
      match Sax.events (Xml.to_string t) with
      | Error _ -> false
      | Ok evs -> (
        match Sax.tree_of_events evs with Ok t' -> Xml.equal t t' | Error _ -> false))

let prop_subtree_end =
  QCheck2.Test.make ~name:"subtree_end bounds descendants exactly" ~count:12 gen_tree (fun t ->
      let d = Doc.of_tree t in
      let ok = ref true in
      Doc.iter_elements d (fun e ->
          Doc.iter_elements d (fun e' ->
              let inside = e' > e && e' < Doc.subtree_end d e in
              if inside <> Doc.is_ancestor d e e' then ok := false));
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "xmldom"
    [
      ( "xml",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip_simple;
          Alcotest.test_case "direct vs deep text" `Quick test_direct_vs_deep_text;
          Alcotest.test_case "count elements" `Quick test_count_elements;
          Alcotest.test_case "attribute" `Quick test_attribute;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "prolog" `Quick test_parse_decl_doctype_comments;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "attributes" `Quick test_parse_attrs;
          Alcotest.test_case "whitespace dropped" `Quick test_parse_ws_dropped;
          Alcotest.test_case "mixed content kept" `Quick test_parse_mixed_kept;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_parse_error_position;
        ] );
      ( "doc",
        [
          Alcotest.test_case "numbering" `Quick test_doc_numbering;
          Alcotest.test_case "containment" `Quick test_doc_containment;
          Alcotest.test_case "by_tag" `Quick test_doc_by_tag;
          Alcotest.test_case "navigation" `Quick test_doc_navigation;
          Alcotest.test_case "text" `Quick test_doc_text;
          Alcotest.test_case "to_tree roundtrip" `Quick test_doc_to_tree_roundtrip;
          Alcotest.test_case "path rendering" `Quick test_doc_path;
          Alcotest.test_case "of_string" `Quick test_doc_of_string;
        ] );
      ( "sax",
        [
          Alcotest.test_case "event stream" `Quick test_sax_events;
          Alcotest.test_case "fold counts" `Quick test_sax_fold_counts;
          Alcotest.test_case "errors propagate" `Quick test_sax_error_propagates;
          Alcotest.test_case "tree roundtrip" `Quick test_sax_tree_roundtrip;
          Alcotest.test_case "tree_of_events errors" `Quick test_sax_tree_of_events_errors;
        ] );
      ( "tag",
        [
          Alcotest.test_case "interning" `Quick test_tag_interning;
          Alcotest.test_case "growth" `Quick test_tag_growth;
        ] );
      ( "properties",
        [
          q prop_parse_serialize_roundtrip;
          q prop_doc_prepost;
          q prop_doc_tree_roundtrip;
          q prop_sax_agrees_with_dom;
          q prop_subtree_end;
        ] );
    ]
