(* Tests for the IR substrate: tokenizer, stemmer, FTExp, index. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Tokenizer = Fulltext.Tokenizer
module Stemmer = Fulltext.Stemmer
module Stopwords = Fulltext.Stopwords
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_slist = Alcotest.(check (list string))
let check_ilist = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Tokenizer *)

let test_tokens_basic () =
  check_slist "split and lowercase" [ "hello"; "world" ] (Tokenizer.tokens "Hello, World!");
  check_slist "digits kept" [ "x86"; "64bit" ] (Tokenizer.tokens "x86 / 64bit");
  check_slist "empty" [] (Tokenizer.tokens "  \t . ,, !");
  check_int "count" 3 (Tokenizer.count "one two three")

let test_tokens_unicode_bytes () =
  (* UTF-8 bytes are word bytes: accented words stay whole. *)
  check_slist "utf8 word" [ "caf\xc3\xa9" ] (Tokenizer.tokens "caf\xc3\xa9!")

(* ------------------------------------------------------------------ *)
(* Stemmer: reference pairs from Porter's paper and test vocabulary. *)

let stem_pairs =
  [
    ("caresses", "caress"); ("ponies", "poni"); ("ties", "ti"); ("caress", "caress");
    ("cats", "cat"); ("feed", "feed"); ("agreed", "agre"); ("plastered", "plaster");
    ("bled", "bled"); ("motoring", "motor"); ("sing", "sing"); ("conflated", "conflat");
    ("troubled", "troubl"); ("sized", "size"); ("hopping", "hop"); ("tanned", "tan");
    ("falling", "fall"); ("hissing", "hiss"); ("fizzed", "fizz"); ("failing", "fail");
    ("filing", "file"); ("happy", "happi"); ("sky", "sky"); ("relational", "relat");
    ("conditional", "condit"); ("rational", "ration"); ("valenci", "valenc");
    ("hesitanci", "hesit"); ("digitizer", "digit"); ("conformabli", "conform");
    ("radicalli", "radic"); ("differentli", "differ"); ("vileli", "vile");
    ("analogousli", "analog"); ("vietnamization", "vietnam"); ("predication", "predic");
    ("operator", "oper"); ("feudalism", "feudal"); ("decisiveness", "decis");
    ("hopefulness", "hope"); ("callousness", "callous"); ("formaliti", "formal");
    ("sensitiviti", "sensit"); ("sensibiliti", "sensibl"); ("triplicate", "triplic");
    ("formative", "form"); ("formalize", "formal"); ("electriciti", "electr");
    ("electrical", "electr"); ("hopeful", "hope"); ("goodness", "good");
    ("revival", "reviv"); ("allowance", "allow"); ("inference", "infer");
    ("airliner", "airlin"); ("gyroscopic", "gyroscop"); ("adjustable", "adjust");
    ("defensible", "defens"); ("irritant", "irrit"); ("replacement", "replac");
    ("adjustment", "adjust"); ("dependent", "depend"); ("adoption", "adopt");
    ("homologou", "homolog"); ("communism", "commun"); ("activate", "activ");
    ("angulariti", "angular"); ("homologous", "homolog"); ("effective", "effect");
    ("bowdlerize", "bowdler"); ("probate", "probat"); ("rate", "rate");
    ("cease", "ceas"); ("controll", "control"); ("roll", "roll");
    ("streaming", "stream"); ("streams", "stream"); ("streamed", "stream");
    ("queries", "queri"); ("querying", "queri"); ("databases", "databas");
  ]

let test_stemmer_pairs () =
  List.iter
    (fun (w, expected) -> check_string w expected (Stemmer.stem w))
    stem_pairs

let test_stemmer_short_and_nonletters () =
  check_string "short word unchanged" "at" (Stemmer.stem "at");
  check_string "non-letters unchanged" "x86" (Stemmer.stem "x86")

(* ------------------------------------------------------------------ *)
(* Stopwords *)

let test_stopwords () =
  check_bool "the" true (Stopwords.is_stopword "the");
  check_bool "and" true (Stopwords.is_stopword "and");
  check_bool "xml" false (Stopwords.is_stopword "xml");
  check_bool "list nonempty" true (List.length Stopwords.all > 50)

(* ------------------------------------------------------------------ *)
(* Ftexp parse/print *)

let parse_ft s =
  match Ftexp.of_string s with
  | Ok e -> e
  | Error { position; message } -> Alcotest.failf "ftexp parse failed at %d: %s" position message

let test_ftexp_parse_basic () =
  check_bool "two keywords" true
    (Ftexp.equal (parse_ft "\"XML\" and \"streaming\"") Ftexp.(Term "xml" &&& Term "streaming"));
  check_bool "bare words" true (Ftexp.equal (parse_ft "xml and streaming") Ftexp.(Term "xml" &&& Term "streaming"));
  check_bool "or/not" true
    (Ftexp.equal (parse_ft "a or not b") Ftexp.(Term "a" ||| not_ (Term "b")));
  check_bool "parens" true
    (Ftexp.equal (parse_ft "(a or b) and c") Ftexp.(And (Or (Term "a", Term "b"), Term "c")))

let test_ftexp_parse_phrase_window () =
  check_bool "phrase" true (Ftexp.equal (parse_ft "\"data stream\"") (Ftexp.Phrase [ "data"; "stream" ]));
  check_bool "window" true
    (Ftexp.equal (parse_ft "window(5, \"xml\", \"query\")") (Ftexp.Window (5, [ "xml"; "query" ])))

let test_ftexp_parse_errors () =
  let bad s = match Ftexp.of_string s with Ok _ -> Alcotest.failf "expected error: %S" s | Error _ -> () in
  bad "";
  bad "and";
  bad "a and";
  bad "(a";
  bad "a)";
  bad "window(0, \"x\")";
  bad "window(3)";
  bad "\"unterminated"

let test_ftexp_print_parse_roundtrip () =
  let exps =
    [
      Ftexp.(Term "xml" &&& Term "streaming");
      Ftexp.(Or (And (Term "a", Term "b"), Not (Term "c")));
      Ftexp.Phrase [ "data"; "stream" ];
      Ftexp.(Window (4, [ "x"; "y" ]) &&& Term "z");
    ]
  in
  List.iter
    (fun e ->
      let printed = Ftexp.to_string e in
      check_bool ("roundtrip " ^ printed) true (Ftexp.equal e (parse_ft printed)))
    exps

let test_ftexp_keywords () =
  let e = Ftexp.(And (Term "a", Or (Not (Term "b"), Phrase [ "c"; "a" ]))) in
  check_slist "keywords" [ "a"; "b"; "c" ] (Ftexp.keywords e);
  check_slist "positive keywords" [ "a"; "c" ] (Ftexp.positive_keywords e);
  check_bool "not positive" false (Ftexp.is_positive e);
  check_bool "positive" true Ftexp.(is_positive (Term "a" &&& Phrase [ "b"; "c" ]))

(* ------------------------------------------------------------------ *)
(* Index on a handcrafted document *)

(* <doc>
     <a>xml streaming algorithms</a>
     <b><c>xml queries</c><d>streaming data</d></b>
     <e>unrelated prose words</e>
   </doc> *)
let sample () =
  let tree =
    el "doc"
      [
        el "a" [ txt "xml streaming algorithms" ];
        el "b" [ el "c" [ txt "xml queries" ]; el "d" [ txt "streaming data" ] ];
        el "e" [ txt "unrelated prose words" ];
      ]
  in
  let d = Doc.of_tree tree in
  (d, Index.build d)

(* element ids: doc=0 a=1 b=2 c=3 d=4 e=5 *)

let test_index_stats () =
  let _, idx = sample () in
  check_int "tokens" 10 (Index.n_tokens idx);
  check_bool "terms" true (Index.distinct_terms idx >= 8)

let test_index_tok_ranges () =
  let _, idx = sample () in
  check_bool "doc covers all" true (Index.tok_range idx 0 = (0, 10));
  check_bool "a range" true (Index.tok_range idx 1 = (0, 3));
  check_bool "b covers c and d" true (Index.tok_range idx 2 = (3, 7));
  check_bool "c range" true (Index.tok_range idx 3 = (3, 5))

let test_index_satisfies () =
  let _, idx = sample () in
  let xml = Ftexp.Term "xml" in
  let both = Ftexp.(Term "xml" &&& Term "streaming") in
  check_bool "a has xml" true (Index.satisfies idx xml 1);
  check_bool "e lacks xml" false (Index.satisfies idx xml 5);
  check_bool "a has both" true (Index.satisfies idx both 1);
  check_bool "c lacks both" false (Index.satisfies idx both 3);
  check_bool "b has both (across children)" true (Index.satisfies idx both 2);
  check_bool "root has both" true (Index.satisfies idx both 0)

let test_index_stemming_match () =
  let _, idx = sample () in
  (* "streams" stems to "stream", matching indexed "streaming". *)
  check_bool "stemmed query" true (Index.satisfies idx (Ftexp.Term "streams") 1);
  check_bool "stemmed query 2" true (Index.satisfies idx (Ftexp.Term "query") 3)

let test_index_not () =
  let _, idx = sample () in
  let e = Ftexp.(Term "prose" &&& not_ (Term "xml")) in
  check_bool "e satisfies" true (Index.satisfies idx e 5);
  check_bool "root does not (has xml)" false (Index.satisfies idx e 0)

let test_index_phrase () =
  let _, idx = sample () in
  check_bool "phrase present" true (Index.satisfies idx (Ftexp.Phrase [ "xml"; "streaming" ]) 1);
  check_bool "phrase crosses order" false (Index.satisfies idx (Ftexp.Phrase [ "streaming"; "xml" ]) 1);
  check_bool "phrase not in c" false (Index.satisfies idx (Ftexp.Phrase [ "xml"; "streaming" ]) 3)

let test_index_window () =
  let _, idx = sample () in
  check_bool "tight window" true (Index.satisfies idx (Ftexp.Window (2, [ "xml"; "streaming" ])) 1);
  check_bool "window too small in b" false (Index.satisfies idx (Ftexp.Window (2, [ "queries"; "data" ])) 2);
  check_bool "wider window in b" true (Index.satisfies idx (Ftexp.Window (4, [ "queries"; "data" ])) 2)

let test_index_all_satisfying () =
  let _, idx = sample () in
  let both = Ftexp.(Term "xml" &&& Term "streaming") in
  check_ilist "upward closed" [ 0; 1; 2 ] (Index.all_satisfying idx both)

let test_index_most_specific () =
  let _, idx = sample () in
  let both = Ftexp.(Term "xml" &&& Term "streaming") in
  (* a satisfies; b satisfies but no child of b does; doc is an ancestor
     of both so not minimal. *)
  check_ilist "most specific" [ 1; 2 ] (Index.most_specific idx both)

let test_index_scores_monotone () =
  let _, idx = sample () in
  let xml = Ftexp.Term "xml" in
  check_bool "root >= a" true (Index.raw_score idx xml 0 >= Index.raw_score idx xml 1);
  check_bool "zero when unsat" true (Index.raw_score idx xml 5 = 0.0);
  let n = Index.normalized_score idx xml 1 in
  check_bool "normalized in range" true (n > 0.0 && n <= 1.0);
  check_bool "root normalized is 1" true (Index.normalized_score idx xml 0 = 1.0)

let test_index_matches_ranked () =
  let _, idx = sample () in
  let ms = Index.matches idx (Ftexp.Term "xml") in
  check_bool "nonempty" true (List.length ms = 2);
  let scores = List.map snd ms in
  check_bool "descending" true (scores = List.sort (fun a b -> Float.compare b a) scores);
  check_bool "top is 1.0" true (List.hd scores = 1.0)

let test_index_count_with_tag () =
  let d, idx = sample () in
  let tag t = Option.get (Xmldom.Tag.find (Doc.tags d) t) in
  check_int "one a with xml" 1 (Index.count_satisfying_with_tag idx (Ftexp.Term "xml") (tag "a"));
  check_int "no e with xml" 0 (Index.count_satisfying_with_tag idx (Ftexp.Term "xml") (tag "e"))

let test_index_stopwords_skipped () =
  let d = Doc.of_tree (el "r" [ txt "the cat and the dog" ]) in
  let idx = Index.build d in
  check_int "only content words" 2 (Index.n_tokens idx);
  check_bool "phrase across stopwords" true (Index.satisfies idx (Ftexp.Phrase [ "cat"; "dog" ]) 0)

let test_index_empty_text () =
  let d = Doc.of_tree (el "r" [ el "a" []; el "b" [ txt "word" ] ]) in
  let idx = Index.build d in
  check_bool "empty element unsat" false (Index.satisfies idx (Ftexp.Term "word") 1);
  check_bool "b sat" true (Index.satisfies idx (Ftexp.Term "word") 2)

(* ------------------------------------------------------------------ *)
(* Scorers *)

module Scorer = Fulltext.Scorer

let test_scorer_strings () =
  check_bool "tfidf roundtrip" true (Scorer.of_string "tfidf" = Ok Scorer.Tf_idf);
  check_bool "bm25 parse" true (Scorer.of_string "bm25" = Ok (Scorer.bm25 ()));
  check_bool "unknown rejected" true (Result.is_error (Scorer.of_string "pagerank"))

let test_scorer_term_score_shapes () =
  let tfidf tf = Scorer.term_score Scorer.Tf_idf ~tf ~df:10 ~n_tokens:1000 ~scope_len:20 ~avg_scope_len:20.0 in
  let bm tf = Scorer.term_score (Scorer.bm25 ()) ~tf ~df:10 ~n_tokens:1000 ~scope_len:20 ~avg_scope_len:20.0 in
  check_bool "zero tf" true (tfidf 0 = 0.0 && bm 0 = 0.0);
  check_bool "tfidf grows with tf" true (tfidf 5 > tfidf 1);
  check_bool "bm25 grows with tf" true (bm 5 > bm 1);
  (* bm25 saturates: the marginal gain shrinks *)
  check_bool "bm25 saturation" true (bm 2 -. bm 1 > bm 10 -. bm 9);
  (* rarer terms score higher under both *)
  let rare scorer = Scorer.term_score scorer ~tf:1 ~df:2 ~n_tokens:1000 ~scope_len:20 ~avg_scope_len:20.0 in
  let freq scorer = Scorer.term_score scorer ~tf:1 ~df:200 ~n_tokens:1000 ~scope_len:20 ~avg_scope_len:20.0 in
  check_bool "idf tfidf" true (rare Scorer.Tf_idf > freq Scorer.Tf_idf);
  check_bool "idf bm25" true (rare (Scorer.bm25 ()) > freq (Scorer.bm25 ()))

let test_scorer_bm25_length_norm () =
  let at_len scope_len =
    Scorer.term_score (Scorer.bm25 ()) ~tf:2 ~df:10 ~n_tokens:1000 ~scope_len ~avg_scope_len:20.0
  in
  check_bool "longer scopes discounted" true (at_len 10 > at_len 100)

let test_index_with_bm25 () =
  let d =
    Doc.of_tree
      (el "r"
         [
           el "short" [ txt "xml" ];
           el "long" [ txt ("xml " ^ String.concat " " (List.init 40 (fun i -> "filler" ^ string_of_int i))) ];
         ])
  in
  let idx = Index.build ~scorer:(Scorer.bm25 ()) d in
  check_bool "scorer recorded" true (Index.scorer idx = Scorer.bm25 ());
  let s_short = Index.raw_score idx (Ftexp.Term "xml") 1 in
  let s_long = Index.raw_score idx (Ftexp.Term "xml") 2 in
  check_bool "tight match outscores diluted one" true (s_short > s_long);
  (* default scorer is unchanged behaviour *)
  let idx0 = Index.build d in
  check_bool "default is tfidf" true (Index.scorer idx0 = Scorer.Tf_idf)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_words =
  QCheck2.Gen.(list_size (1 -- 30) (oneofl [ "alpha"; "beta"; "gamma"; "delta"; "xml" ]))

let doc_of_words words =
  (* split words over a few nested elements *)
  let rec build ws =
    match ws with
    | [] -> []
    | [ w ] -> [ txt w ]
    | w :: rest -> [ txt w; el "s" (build rest) ]
  in
  Doc.of_tree (el "r" (build words))

let prop_root_satisfies_any_present_word =
  QCheck2.Test.make ~name:"root satisfies Term w iff w occurs" ~count:100 gen_words (fun ws ->
      let d = doc_of_words ws in
      let idx = Index.build d in
      List.for_all (fun w -> Index.satisfies idx (Ftexp.Term w) 0) ws
      && not (Index.satisfies idx (Ftexp.Term "absentword") 0))

let prop_satisfaction_upward_closed =
  QCheck2.Test.make ~name:"positive satisfaction is upward closed" ~count:100 gen_words (fun ws ->
      let d = doc_of_words ws in
      let idx = Index.build d in
      let f = Ftexp.Term (List.nth ws (List.length ws / 2)) in
      let ok = ref true in
      Doc.iter_elements d (fun e ->
          if Index.satisfies idx f e then
            List.iter
              (fun a -> if not (Index.satisfies idx f a) then ok := false)
              (Doc.ancestors d e));
      !ok)

let prop_raw_score_monotone =
  QCheck2.Test.make ~name:"raw score monotone along ancestors (positive)" ~count:100 gen_words
    (fun ws ->
      let d = doc_of_words ws in
      let idx = Index.build d in
      let f = Ftexp.Term (List.hd ws) in
      let ok = ref true in
      Doc.iter_elements d (fun e ->
          List.iter
            (fun a ->
              if Index.raw_score idx f a < Index.raw_score idx f e -. 1e-9 then ok := false)
            (Doc.ancestors d e));
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "fulltext"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basics" `Quick test_tokens_basic;
          Alcotest.test_case "utf8 bytes" `Quick test_tokens_unicode_bytes;
        ] );
      ( "stemmer",
        [
          Alcotest.test_case "porter reference pairs" `Quick test_stemmer_pairs;
          Alcotest.test_case "short/non-letter words" `Quick test_stemmer_short_and_nonletters;
        ] );
      ("stopwords", [ Alcotest.test_case "membership" `Quick test_stopwords ]);
      ( "ftexp",
        [
          Alcotest.test_case "parse basics" `Quick test_ftexp_parse_basic;
          Alcotest.test_case "phrase and window" `Quick test_ftexp_parse_phrase_window;
          Alcotest.test_case "parse errors" `Quick test_ftexp_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_ftexp_print_parse_roundtrip;
          Alcotest.test_case "keywords" `Quick test_ftexp_keywords;
        ] );
      ( "index",
        [
          Alcotest.test_case "stats" `Quick test_index_stats;
          Alcotest.test_case "token ranges" `Quick test_index_tok_ranges;
          Alcotest.test_case "satisfies" `Quick test_index_satisfies;
          Alcotest.test_case "stemming" `Quick test_index_stemming_match;
          Alcotest.test_case "negation" `Quick test_index_not;
          Alcotest.test_case "phrase" `Quick test_index_phrase;
          Alcotest.test_case "window" `Quick test_index_window;
          Alcotest.test_case "all satisfying" `Quick test_index_all_satisfying;
          Alcotest.test_case "most specific" `Quick test_index_most_specific;
          Alcotest.test_case "score monotone" `Quick test_index_scores_monotone;
          Alcotest.test_case "ranked matches" `Quick test_index_matches_ranked;
          Alcotest.test_case "count by tag" `Quick test_index_count_with_tag;
          Alcotest.test_case "stopwords skipped" `Quick test_index_stopwords_skipped;
          Alcotest.test_case "empty text" `Quick test_index_empty_text;
        ] );
      ( "scorer",
        [
          Alcotest.test_case "strings" `Quick test_scorer_strings;
          Alcotest.test_case "term score shapes" `Quick test_scorer_term_score_shapes;
          Alcotest.test_case "bm25 length norm" `Quick test_scorer_bm25_length_norm;
          Alcotest.test_case "index with bm25" `Quick test_index_with_bm25;
        ] );
      ( "properties",
        [
          q prop_root_satisfies_any_present_word;
          q prop_satisfaction_upward_closed;
          q prop_raw_score_monotone;
        ] );
    ]
