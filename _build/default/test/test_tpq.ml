(* Tests for tree pattern queries: model, parser, closure/core,
   reference semantics, containment.  The fixtures follow the paper's
   Figures 1-6. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Pred = Tpq.Pred
module Query = Tpq.Query
module Closure = Tpq.Closure
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics
module Containment = Tpq.Containment

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let kw = Ftexp.(Term "xml" &&& Term "streaming")

(* Q1 of Figure 1:
   //article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]
   $1=article, $2=section, $3=algorithm, $4=paragraph *)
let q1 () =
  Query.make_exn ~root:1
    ~nodes:
      [
        (1, Query.node_spec ~tag:"article" ());
        (2, Query.node_spec ~tag:"section" ());
        (3, Query.node_spec ~tag:"algorithm" ());
        (4, Query.node_spec ~tag:"paragraph" ~contains:[ kw ] ());
      ]
    ~edges:[ (1, 2, Query.Child); (2, 3, Query.Child); (2, 4, Query.Child) ]
    ~distinguished:1

(* Q3: algorithm promoted to a descendant of article. *)
let q3 () =
  Query.make_exn ~root:1
    ~nodes:
      [
        (1, Query.node_spec ~tag:"article" ());
        (2, Query.node_spec ~tag:"section" ());
        (3, Query.node_spec ~tag:"algorithm" ());
        (4, Query.node_spec ~tag:"paragraph" ~contains:[ kw ] ());
      ]
    ~edges:[ (1, 2, Query.Child); (1, 3, Query.Descendant); (2, 4, Query.Child) ]
    ~distinguished:1

(* Q5: no algorithm node; contains promoted to section. *)
let q5 () =
  Query.make_exn ~root:1
    ~nodes:
      [
        (1, Query.node_spec ~tag:"article" ());
        (2, Query.node_spec ~tag:"section" ~contains:[ kw ] ());
        (4, Query.node_spec ~tag:"paragraph" ());
      ]
    ~edges:[ (1, 2, Query.Child); (2, 4, Query.Child) ]
    ~distinguished:1

(* Q6: keywords anywhere in the article. *)
let q6 () =
  Query.make_exn ~root:1
    ~nodes:[ (1, Query.node_spec ~tag:"article" ~contains:[ kw ] ()) ]
    ~edges:[] ~distinguished:1

(* ------------------------------------------------------------------ *)
(* Query model *)

let test_make_validation () =
  let bad_make ~root ~nodes ~edges ~distinguished =
    match Query.make ~root ~nodes ~edges ~distinguished with
    | Ok _ -> Alcotest.fail "expected validation error"
    | Error _ -> ()
  in
  let n = Query.node_spec ~tag:"a" () in
  bad_make ~root:1 ~nodes:[ (2, n) ] ~edges:[] ~distinguished:2;
  bad_make ~root:1 ~nodes:[ (1, n) ] ~edges:[] ~distinguished:9;
  bad_make ~root:1 ~nodes:[ (1, n); (2, n) ] ~edges:[] ~distinguished:1;
  (* disconnected *)
  bad_make ~root:1
    ~nodes:[ (1, n); (2, n); (3, n) ]
    ~edges:[ (2, 3, Query.Child) ]
    ~distinguished:1 (* 2 unreachable from root *)

let test_accessors () =
  let q = q1 () in
  check_int "size" 4 (Query.size q);
  check_int "root" 1 (Query.root q);
  check_int "distinguished" 1 (Query.distinguished q);
  check_ilist "vars" [ 1; 2; 3; 4 ] (Query.vars q);
  check_bool "parent of 4" true (Query.parent q 4 = Some (2, Query.Child));
  check_bool "children of 2" true (Query.children q 2 = [ (3, Query.Child); (4, Query.Child) ]);
  check_ilist "leaves" [ 3; 4 ] (Query.leaves q);
  check_int "depth of 4" 2 (Query.depth q 4);
  check_int "fresh var" 5 (Query.fresh_var q);
  check_ilist "subtree of 2" [ 2; 3; 4 ] (Query.descendant_vars q 2)

let test_edit_set_axis () =
  let q = Query.set_axis (q1 ()) 2 Query.Descendant in
  check_bool "axis changed" true (Query.parent q 2 = Some (1, Query.Descendant))

let test_edit_delete_leaf () =
  match Query.delete_leaf (q1 ()) 3 with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_int "size" 3 (Query.size q);
    check_bool "gone" false (Query.mem q 3);
    check_bool "delete root fails" true (Result.is_error (Query.delete_leaf q 1));
    check_bool "delete non-leaf fails" true (Result.is_error (Query.delete_leaf q 2))

let test_edit_delete_distinguished_leaf () =
  let q =
    Query.make_exn ~root:1
      ~nodes:[ (1, Query.node_spec ~tag:"a" ()); (2, Query.node_spec ~tag:"b" ()) ]
      ~edges:[ (1, 2, Query.Child) ]
      ~distinguished:2
  in
  match Query.delete_leaf q 2 with
  | Error e -> Alcotest.fail e
  | Ok q' -> check_int "distinguished moved to parent" 1 (Query.distinguished q')

let test_edit_reparent () =
  match Query.reparent (q1 ()) 3 1 Query.Descendant with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_bool "moved" true (Query.parent q 3 = Some (1, Query.Descendant));
    check_bool "isomorphic to Q3" true (String.equal (Query.canonical_key q) (Query.canonical_key (q3 ())));
    check_bool "reparent into own subtree fails" true
      (Result.is_error (Query.reparent q 2 4 Query.Child))

let test_edit_move_contains () =
  match Query.move_contains (q1 ()) ~from_var:4 ~to_var:2 kw with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_bool "gone from 4" true ((Query.node q 4).contains = []);
    check_bool "on 2" true (List.exists (Ftexp.equal kw) (Query.node q 2).contains);
    check_bool "absent move fails" true
      (Result.is_error (Query.move_contains q ~from_var:4 ~to_var:2 kw))

(* ------------------------------------------------------------------ *)
(* Logical form and closure (Figures 2 and 4) *)

let test_to_preds_q1 () =
  let preds = Query.to_preds (q1 ()) in
  let expect =
    [
      Pred.Pc (1, 2); Pred.Pc (2, 3); Pred.Pc (2, 4);
      Pred.Tag_eq (1, "article"); Pred.Tag_eq (2, "section");
      Pred.Tag_eq (3, "algorithm"); Pred.Tag_eq (4, "paragraph");
      Pred.Contains (4, kw);
    ]
  in
  List.iter
    (fun p -> check_bool (Pred.to_string p) true (List.exists (Pred.equal p) preds))
    expect;
  check_int "exactly these" (List.length expect) (List.length preds)

let test_closure_q1 () =
  (* Figure 4: the closure adds five ad predicates and two derived
     contains predicates. *)
  let cl = Closure.closure (Query.to_preds (q1 ())) in
  let derived =
    [
      Pred.Ad (1, 2); Pred.Ad (2, 3); Pred.Ad (2, 4); Pred.Ad (1, 3); Pred.Ad (1, 4);
      Pred.Contains (2, kw); Pred.Contains (1, kw);
    ]
  in
  List.iter
    (fun p -> check_bool (Pred.to_string p) true (List.exists (Pred.equal p) cl))
    derived;
  check_int "8 original + 7 derived" 15 (List.length cl)

let test_closure_idempotent () =
  let cl = Closure.closure (Query.to_preds (q1 ())) in
  check_bool "idempotent" true (Closure.closure cl = cl)

let test_closure_no_contains_through_negation () =
  let neg = Ftexp.Not (Ftexp.Term "x") in
  let preds = [ Pred.Pc (1, 2); Pred.Contains (2, neg) ] in
  let cl = Closure.closure preds in
  check_bool "negative contains not propagated" false
    (List.exists (Pred.equal (Pred.Contains (1, neg))) cl)

let test_redundancy () =
  let cl = Closure.closure_set (Pred.Set.of_list (Query.to_preds (q1 ()))) in
  check_bool "derived ad redundant" true (Closure.is_redundant cl (Pred.Ad (1, 3)));
  check_bool "pc not redundant" false (Closure.is_redundant cl (Pred.Pc (1, 2)));
  check_bool "original contains not redundant" false
    (Closure.is_redundant cl (Pred.Contains (4, kw)))

let test_core_q1 () =
  (* The core of Q1's closure is Q1's own predicate set. *)
  let core = Closure.core (Query.to_preds (q1 ())) in
  check_bool "core = original" true (core = Query.to_preds (q1 ()))

let test_core_unique_viewpoint () =
  (* Dropping pc(2,3) and ad(2,3) from Q1's closure then taking the core
     yields exactly Q3 (Figure 5). *)
  let cl = Closure.closure (Query.to_preds (q1 ())) in
  let s = Pred.Set.of_list [ Pred.Pc (2, 3); Pred.Ad (2, 3) ] in
  let remaining = List.filter (fun p -> not (Pred.Set.mem p s)) cl in
  let core = Closure.core remaining in
  match Query.of_preds ~distinguished:1 core with
  | Error e -> Alcotest.fail e
  | Ok q -> check_bool "core is Q3" true (Query.equal q (q3 ()))

let test_equivalence () =
  let preds = Query.to_preds (q1 ()) in
  let cl = Closure.closure preds in
  check_bool "query equiv closure" true (Closure.equivalent preds cl);
  (* dropping only the derivable ad(1,3) keeps equivalence *)
  let without = List.filter (fun p -> not (Pred.equal p (Pred.Ad (1, 3)))) cl in
  check_bool "minus derivable" true (Closure.equivalent preds without);
  (* dropping pc(1,2) does not *)
  let without_pc = List.filter (fun p -> not (Pred.equal p (Pred.Pc (1, 2)))) cl in
  check_bool "minus pc differs" false (Closure.equivalent preds without_pc)

let test_minimize () =
  (* build a query whose edges include a derivable ad edge by hand:
     a//c with an intermediate b child chain is already minimal, but a
     query from the closure including ad(1,3) collapses back *)
  let q = q1 () in
  check_bool "minimal query unchanged" true (Query.equal (Closure.minimize q) q);
  (* of_preds over a full closure reconstructs the same query after
     minimization *)
  let cl = Closure.closure (Query.to_preds q) in
  match Query.of_preds ~distinguished:1 (Closure.core cl) with
  | Error e -> Alcotest.fail e
  | Ok rebuilt -> check_bool "closure core round trip" true (Query.equal (Closure.minimize rebuilt) q)

let test_of_preds_rejects () =
  let bad preds =
    match Query.of_preds ~distinguished:1 preds with
    | Ok _ -> Alcotest.fail "expected rejection"
    | Error _ -> ()
  in
  (* two parents *)
  bad [ Pred.Pc (1, 3); Pred.Pc (2, 3); Pred.Tag_eq (1, "a") ];
  (* disconnected *)
  bad [ Pred.Pc (1, 2); Pred.Pc (3, 4) ];
  (* cycle *)
  bad [ Pred.Pc (1, 2); Pred.Pc (2, 1) ]

(* ------------------------------------------------------------------ *)
(* XPath parser and printer *)

let test_xpath_parse_q1 () =
  let q =
    Xpath.parse_exn
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"
  in
  check_bool "parses to Q1 shape" true
    (String.equal (Query.canonical_key q) (Query.canonical_key (q1 ())))

let test_xpath_parse_q3 () =
  let q =
    Xpath.parse_exn
      "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]"
  in
  check_bool "parses to Q3 shape" true
    (String.equal (Query.canonical_key q) (Query.canonical_key (q3 ())))

let test_xpath_parse_main_path () =
  let q = Xpath.parse_exn "//article/section//paragraph" in
  check_int "three vars" 3 (Query.size q);
  check_bool "distinguished is last step" true
    ((Query.node q (Query.distinguished q)).tag = Some "paragraph")

let test_xpath_parse_wildcard_attr () =
  let q = Xpath.parse_exn "//item[@id = \"item5\" and ./*[@category != \"c\"]]" in
  check_int "two vars" 2 (Query.size q);
  let root_node = Query.node q (Query.root q) in
  check_bool "attr pred parsed" true
    (root_node.attrs = [ { Pred.attr = "id"; op = Pred.Eq; value = Pred.S "item5" } ]);
  let child = List.hd (Query.children q (Query.root q)) |> fst in
  check_bool "wildcard" true ((Query.node q child).tag = None)

let test_xpath_parse_numeric_attr () =
  let q = Xpath.parse_exn "//item[@price <= 100]" in
  let root_node = Query.node q (Query.root q) in
  check_bool "numeric" true
    (root_node.attrs = [ { Pred.attr = "price"; op = Pred.Le; value = Pred.F 100.0 } ])

let test_xpath_parse_fn_contains () =
  let q = Xpath.parse_exn "//section[contains(., \"xml\")]" in
  check_bool "contains on self" true
    ((Query.node q (Query.root q)).contains = [ Ftexp.Term "xml" ])

let test_xpath_parse_errors () =
  let bad s = match Xpath.parse s with Ok _ -> Alcotest.failf "expected error: %S" s | Error _ -> () in
  bad "";
  bad "article";
  bad "//";
  bad "//a[";
  bad "//a[./b";
  bad "//a[.contains(]";
  bad "//a]"

let test_xpath_roundtrip () =
  let queries = [ q1 (); q3 (); q5 (); q6 () ] in
  List.iter
    (fun q ->
      let s = Xpath.to_string q in
      let q' = Xpath.parse_exn s in
      check_bool ("roundtrip " ^ s) true
        (String.equal (Query.canonical_key q) (Query.canonical_key q')))
    queries

let test_xpath_roundtrip_deep_distinguished () =
  let s = "//article/section/paragraph[.contains(\"xml\")]" in
  let q = Xpath.parse_exn s in
  let q' = Xpath.parse_exn (Xpath.to_string q) in
  check_bool "distinguished preserved" true
    ((Query.node q' (Query.distinguished q')).tag = Some "paragraph")

(* ------------------------------------------------------------------ *)
(* Reference semantics on the running example *)

let sample_doc () =
  (* article0: exact Q1 match
     article1: keywords in section title only (Q2-style)
     article2: algorithm in another section (Q3-style)
     article3: no algorithm at all (Q5-style)
     article4: keywords only at top level (Q6-style) *)
  let kwtxt = txt "xml streaming" in
  let d =
    el "collection"
      [
        el "article"
          [ el "section" [ el "algorithm" [ txt "a" ]; el "paragraph" [ kwtxt ] ] ];
        el "article"
          [
            el "section"
              [ el "title" [ kwtxt ]; el "algorithm" [ txt "a" ]; el "paragraph" [ txt "p" ] ];
          ];
        el "article"
          [
            el "section" [ el "paragraph" [ kwtxt ] ];
            el "section" [ el "algorithm" [ txt "a" ] ];
          ];
        el "article" [ el "section" [ el "paragraph" [ kwtxt ] ] ];
        el "article" [ el "abstract" [ kwtxt ] ];
      ]
  in
  let doc = Doc.of_tree d in
  (doc, Index.build doc)

let article_ids doc =
  Array.to_list (Doc.by_tag_name doc "article")

let test_semantics_q1 () =
  let doc, idx = sample_doc () in
  let arts = article_ids doc in
  check_ilist "only exact article" [ List.nth arts 0 ] (Semantics.answers doc idx (q1 ()))

let test_semantics_q3 () =
  let doc, idx = sample_doc () in
  let arts = article_ids doc in
  check_ilist "exact + algo-elsewhere" [ List.nth arts 0; List.nth arts 2 ]
    (Semantics.answers doc idx (q3 ()))

let test_semantics_q5 () =
  let doc, idx = sample_doc () in
  let arts = article_ids doc in
  (* Q5 asks for a section containing the keywords anywhere plus a
     paragraph child: article1's keywords sit in the section title, which
     still satisfies contains($2). *)
  check_ilist "sections with keywords and a paragraph"
    [ List.nth arts 0; List.nth arts 1; List.nth arts 2; List.nth arts 3 ]
    (Semantics.answers doc idx (q5 ()))

let test_semantics_q6 () =
  let doc, idx = sample_doc () in
  let arts = article_ids doc in
  check_ilist "all keyword articles" [ List.nth arts 0; List.nth arts 1; List.nth arts 2; List.nth arts 3; List.nth arts 4 ]
    (Semantics.answers doc idx (q6 ()))

let test_semantics_matches_and_count () =
  let doc, idx = sample_doc () in
  let q = q1 () in
  check_int "count" (List.length (Semantics.matches doc idx q)) (Semantics.count_matches doc idx q);
  check_int "limit" 1 (List.length (Semantics.matches ~limit:1 doc idx (q6 ())))

let test_semantics_holds_at () =
  let doc, idx = sample_doc () in
  let arts = article_ids doc in
  check_bool "holds at exact" true (Semantics.holds_at doc idx (q1 ()) (List.nth arts 0));
  check_bool "fails elsewhere" false (Semantics.holds_at doc idx (q1 ()) (List.nth arts 1))

let test_semantics_wildcard () =
  let doc, idx = sample_doc () in
  let q = Xpath.parse_exn "//article/*[.contains(\"xml\")]" in
  (* one section per keyword-bearing article plus article4's abstract *)
  check_int "wildcard matches" 5 (List.length (Semantics.answers doc idx q))

let test_semantics_attr () =
  let d = Doc.of_tree (el "r" [ el "x" ~attrs:[ ("p", "5") ] []; el "x" ~attrs:[ ("p", "50") ] [] ]) in
  let idx = Index.build d in
  let q = Xpath.parse_exn "//x[@p < 10]" in
  check_int "numeric filter" 1 (List.length (Semantics.answers d idx q))

(* ------------------------------------------------------------------ *)
(* Containment *)

let test_containment_chain () =
  (* Q1 ⊆ Q3 ⊆ Q5-with-contains ⊆ Q6 per the paper. *)
  check_bool "Q1 in Q3" true (Containment.contained (q1 ()) (q3 ()));
  check_bool "Q3 not in Q1" false (Containment.contained (q3 ()) (q1 ()));
  check_bool "Q1 in Q6" true (Containment.contained (q1 ()) (q6 ()));
  check_bool "Q3 in Q6" true (Containment.contained (q3 ()) (q6 ()));
  check_bool "Q5 in Q6" true (Containment.contained (q5 ()) (q6 ()));
  check_bool "Q6 not in Q1" false (Containment.contained (q6 ()) (q1 ()))

let test_containment_reflexive () =
  List.iter
    (fun q -> check_bool "self" true (Containment.contained q q))
    [ q1 (); q3 (); q5 (); q6 () ]

let test_containment_on_data () =
  let doc, idx = sample_doc () in
  let sub a b =
    let aa = Semantics.answers doc idx a and bb = Semantics.answers doc idx b in
    List.for_all (fun x -> List.mem x bb) aa
  in
  check_bool "data agrees Q1 in Q3" true (sub (q1 ()) (q3 ()));
  check_bool "data agrees Q3 in Q6" true (sub (q3 ()) (q6 ()))

(* ------------------------------------------------------------------ *)
(* Properties: random TPQs against random documents *)

let gen_doc =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c" ] in
  let word_gen = oneofl [ "xml"; "data"; "query" ] in
  sized @@ fix (fun self n ->
      let* t = tag_gen in
      if n <= 0 then
        let* w = word_gen in
        return (Xml.Element (t, [], [ Xml.Text w ]))
      else
        let* kids = list_size (1 -- 3) (self (n / 3)) in
        let* w = word_gen in
        return (Xml.Element (t, [], Xml.Text w :: kids)))

let gen_query =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c" ] in
  let word_gen = oneofl [ "xml"; "data"; "query" ] in
  let node_gen =
    let* t = tag_gen in
    let* has_kw = bool in
    let* w = word_gen in
    return (Query.node_spec ~tag:t ~contains:(if has_kw then [ Ftexp.Term w ] else []) ())
  in
  let* n_nodes = 1 -- 4 in
  let* nodes = list_repeat n_nodes node_gen in
  let* axes = list_repeat n_nodes (oneofl [ Query.Child; Query.Descendant ]) in
  let* parents = flatten_l (List.init n_nodes (fun i -> if i = 0 then return 0 else 0 -- (i - 1))) in
  let nodes = List.mapi (fun i n -> (i + 1, n)) nodes in
  let edges =
    List.concat
      (List.mapi
         (fun i (p, a) -> if i = 0 then [] else [ (p + 1, i + 1, a) ])
         (List.combine parents axes))
  in
  let* dist = 1 -- n_nodes in
  match Query.make ~root:1 ~nodes ~edges ~distinguished:dist with
  | Ok q -> return q
  | Error _ -> assert false

let prop_closure_preserves_answers =
  QCheck2.Test.make ~name:"closure-equivalent queries give equal answers" ~count:60
    (QCheck2.Gen.pair gen_query gen_doc) (fun (q, tree) ->
      let doc = Doc.of_tree tree in
      let idx = Index.build doc in
      (* rebuild the query from the core of its closure *)
      match Query.of_preds ~distinguished:(Query.distinguished q) (Closure.core (Query.to_preds q)) with
      | Error _ -> false
      | Ok q' -> Semantics.answers doc idx q = Semantics.answers doc idx q')

let prop_homomorphism_sound =
  QCheck2.Test.make ~name:"containment test sound on data" ~count:60
    (QCheck2.Gen.triple gen_query gen_query gen_doc) (fun (a, b, tree) ->
      if Containment.contained a b then begin
        let doc = Doc.of_tree tree in
        let idx = Index.build doc in
        let aa = Semantics.answers doc idx a and bb = Semantics.answers doc idx b in
        List.for_all (fun x -> List.mem x bb) aa
      end
      else true)

let prop_core_minimal =
  QCheck2.Test.make ~name:"core has no redundant predicate" ~count:60 gen_query (fun q ->
      let core = Closure.core (Query.to_preds q) in
      let cs = Pred.Set.of_list core in
      not (List.exists (fun p -> Closure.is_redundant cs p) core))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tpq"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "set_axis" `Quick test_edit_set_axis;
          Alcotest.test_case "delete_leaf" `Quick test_edit_delete_leaf;
          Alcotest.test_case "delete distinguished leaf" `Quick test_edit_delete_distinguished_leaf;
          Alcotest.test_case "reparent" `Quick test_edit_reparent;
          Alcotest.test_case "move_contains" `Quick test_edit_move_contains;
        ] );
      ( "closure",
        [
          Alcotest.test_case "logical form of Q1 (Fig 2)" `Quick test_to_preds_q1;
          Alcotest.test_case "closure of Q1 (Fig 4)" `Quick test_closure_q1;
          Alcotest.test_case "idempotent" `Quick test_closure_idempotent;
          Alcotest.test_case "negation blocks contains rule" `Quick test_closure_no_contains_through_negation;
          Alcotest.test_case "redundancy" `Quick test_redundancy;
          Alcotest.test_case "core of Q1" `Quick test_core_q1;
          Alcotest.test_case "core after dropping (Fig 5)" `Quick test_core_unique_viewpoint;
          Alcotest.test_case "equivalence" `Quick test_equivalence;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "of_preds rejections" `Quick test_of_preds_rejects;
        ] );
      ( "xpath",
        [
          Alcotest.test_case "parse Q1" `Quick test_xpath_parse_q1;
          Alcotest.test_case "parse Q3" `Quick test_xpath_parse_q3;
          Alcotest.test_case "main path" `Quick test_xpath_parse_main_path;
          Alcotest.test_case "wildcard and attr" `Quick test_xpath_parse_wildcard_attr;
          Alcotest.test_case "numeric attr" `Quick test_xpath_parse_numeric_attr;
          Alcotest.test_case "fn contains" `Quick test_xpath_parse_fn_contains;
          Alcotest.test_case "errors" `Quick test_xpath_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_xpath_roundtrip;
          Alcotest.test_case "deep distinguished roundtrip" `Quick test_xpath_roundtrip_deep_distinguished;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "Q1 answers" `Quick test_semantics_q1;
          Alcotest.test_case "Q3 answers" `Quick test_semantics_q3;
          Alcotest.test_case "Q5 answers" `Quick test_semantics_q5;
          Alcotest.test_case "Q6 answers" `Quick test_semantics_q6;
          Alcotest.test_case "matches and count" `Quick test_semantics_matches_and_count;
          Alcotest.test_case "holds_at" `Quick test_semantics_holds_at;
          Alcotest.test_case "wildcard" `Quick test_semantics_wildcard;
          Alcotest.test_case "attribute predicate" `Quick test_semantics_attr;
        ] );
      ( "containment",
        [
          Alcotest.test_case "paper chain" `Quick test_containment_chain;
          Alcotest.test_case "reflexive" `Quick test_containment_reflexive;
          Alcotest.test_case "agrees with data" `Quick test_containment_on_data;
        ] );
      ( "properties",
        [ q prop_closure_preserves_answers; q prop_homomorphism_sound; q prop_core_minimal ] );
    ]
