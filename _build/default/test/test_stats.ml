(* Tests for document statistics and the selectivity estimator. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Query = Tpq.Query
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* <r>
     <a><b/><b><c/></b></a>
     <a><c/></a>
     <b/>
   </r>
   r=0 a=1 b=2 b=3 c=4 a=5 c=6 b=7 *)
let sample () =
  Doc.of_tree
    (el "r"
       [
         el "a" [ el "b" []; el "b" [ el "c" [] ] ];
         el "a" [ el "c" [] ];
         el "b" [];
       ])

let test_tag_counts () =
  let st = Stats.build (sample ()) in
  check_int "r" 1 (Stats.count_tag st "r");
  check_int "a" 2 (Stats.count_tag st "a");
  check_int "b" 3 (Stats.count_tag st "b");
  check_int "c" 2 (Stats.count_tag st "c");
  check_int "unknown" 0 (Stats.count_tag st "z")

let test_pc_counts () =
  let st = Stats.build (sample ()) in
  check_int "r->a" 2 (Stats.count_pc st "r" "a");
  check_int "r->b" 1 (Stats.count_pc st "r" "b");
  check_int "a->b" 2 (Stats.count_pc st "a" "b");
  check_int "a->c" 1 (Stats.count_pc st "a" "c");
  check_int "b->c" 1 (Stats.count_pc st "b" "c");
  check_int "none" 0 (Stats.count_pc st "c" "a")

let test_ad_counts () =
  let st = Stats.build (sample ()) in
  check_int "r anc of all" 7 (Stats.count_ad st "r" "a" + Stats.count_ad st "r" "b" + Stats.count_ad st "r" "c");
  check_int "a-c pairs" 2 (Stats.count_ad st "a" "c");
  check_int "a-b pairs" 2 (Stats.count_ad st "a" "b");
  check_int "b-c" 1 (Stats.count_ad st "b" "c")

let test_fractions () =
  let st = Stats.build (sample ()) in
  (* all a-b ad pairs are pc pairs *)
  check_float "pc fraction a/b" 1.0 (Stats.pc_fraction st "a" "b");
  (* half the a-c ancestor pairs are parent-child *)
  check_float "pc fraction a/c" 0.5 (Stats.pc_fraction st "a" "c");
  check_float "ad density a/c" (2.0 /. 4.0) (Stats.ad_density st "a" "c");
  check_float "zero when absent" 0.0 (Stats.pc_fraction st "z" "c")

let test_contains_counts () =
  (* s1 carries "xml" in its own text, s2 only through its child a:
     one of two satisfying sections owes it to a child. *)
  let d =
    Doc.of_tree
      (el "r"
         [
           el "s" [ txt "xml"; el "a" [ txt "data" ] ];
           el "s" [ el "a" [ txt "xml data" ] ];
         ])
  in
  let st = Stats.build d in
  Stats.set_index st (Index.build d);
  check_int "a with xml" 1 (Stats.count_contains st "a" (Ftexp.Term "xml"));
  check_int "s with xml" 2 (Stats.count_contains st "s" (Ftexp.Term "xml"));
  check_float "contains fraction" 0.5
    (Stats.contains_fraction st ~child:"a" ~parent:"s" (Ftexp.Term "xml"));
  (* cache answers the same on repeat *)
  check_int "cached" 1 (Stats.count_contains st "a" (Ftexp.Term "xml"))

let test_estimate_simple_path () =
  let st = Stats.build (sample ()) in
  (* //a : two elements *)
  let q = Xpath.parse_exn "//a" in
  check_float "count of a" 2.0 (Stats.estimate_answers st q);
  (* //a[./b] : 2 a's, 2 pc(a,b) pairs -> capped fraction 1.0 -> 2 *)
  let q2 = Xpath.parse_exn "//a[./b]" in
  check_float "a with b child" 2.0 (Stats.estimate_answers st q2)

let test_estimate_vs_actual_on_xmark () =
  let d = Xmark.Auction.doc ~seed:3 ~items:80 () in
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  let check_query s =
    let q = Xpath.parse_exn s in
    let actual = float_of_int (List.length (Semantics.answers d idx q)) in
    let est = Stats.estimate_answers st q in
    (* the uniform-distribution estimator should land within 3x of the
       truth on XMark's regular structure (when there are answers) *)
    if actual > 0.0 then
      check_bool
        (Printf.sprintf "%s: est %.1f vs actual %.0f" s est actual)
        true
        (est >= actual /. 3.0 && est <= actual *. 3.0)
  in
  check_query "//item";
  check_query "//item[./description/parlist]";
  check_query "//item[./incategory]";
  check_query "//item[./mailbox/mail/text]"

let test_estimate_monotone_under_relaxation () =
  (* relaxing a query should not decrease its estimate *)
  let d = Xmark.Auction.doc ~seed:3 ~items:60 () in
  let st = Stats.build d in
  Stats.set_index st (Index.build d);
  let strict = Xpath.parse_exn "//item[./description/parlist]" in
  let relaxed = Xpath.parse_exn "//item[./description//parlist]" in
  check_bool "relaxation increases estimate" true
    (Stats.estimate_answers st relaxed >= Stats.estimate_answers st strict -. 1e-9)

let test_estimate_matches_vs_answers () =
  let st = Stats.build (sample ()) in
  (* //a/b yields 2 matches but... both under distinct a answers *)
  let q = Xpath.parse_exn "//a/b" in
  check_bool "matches >= answers" true
    (Stats.estimate_matches st q >= Stats.estimate_answers st q -. 1e-9)

let test_estimate_with_contains () =
  let d =
    Doc.of_tree
      (el "r"
         [
           el "a" [ txt "xml" ]; el "a" [ txt "xml" ]; el "a" [ txt "data" ]; el "a" [ txt "etc" ];
         ])
  in
  let st = Stats.build d in
  Stats.set_index st (Index.build d);
  let q = Xpath.parse_exn "//a[.contains(\"xml\")]" in
  check_float "half the a's" 2.0 (Stats.estimate_answers st q)

let test_pp_smoke () =
  let st = Stats.build (sample ()) in
  check_bool "pp" true (String.length (Format.asprintf "%a" Stats.pp st) > 0)

let () =
  Alcotest.run "stats"
    [
      ( "counts",
        [
          Alcotest.test_case "tags" `Quick test_tag_counts;
          Alcotest.test_case "pc pairs" `Quick test_pc_counts;
          Alcotest.test_case "ad pairs" `Quick test_ad_counts;
          Alcotest.test_case "fractions" `Quick test_fractions;
          Alcotest.test_case "contains" `Quick test_contains_counts;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "simple paths" `Quick test_estimate_simple_path;
          Alcotest.test_case "xmark accuracy" `Quick test_estimate_vs_actual_on_xmark;
          Alcotest.test_case "monotone under relaxation" `Quick test_estimate_monotone_under_relaxation;
          Alcotest.test_case "matches vs answers" `Quick test_estimate_matches_vs_answers;
          Alcotest.test_case "with contains" `Quick test_estimate_with_contains;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
