  $ flexpath_cli generate --articles 5 --seed 3 -o articles.xml
  $ flexpath_cli stats --file articles.xml | head -2
  $ flexpath_cli query --file articles.xml -k 3 --algo dpo '//article[.contains("xml" and "streaming")]' > dpo.out
  $ flexpath_cli query --file articles.xml -k 3 --algo sso '//article[.contains("xml" and "streaming")]' > sso.out
  $ flexpath_cli query --file articles.xml -k 3 --algo hybrid '//article[.contains("xml" and "streaming")]' > hybrid.out
  $ diff dpo.out sso.out
  $ diff sso.out hybrid.out
  $ head -1 dpo.out
  $ flexpath_cli relax --file articles.xml '//article[./section/paragraph]' | head -2
  $ flexpath_cli query --file articles.xml -k 1 --weights structural=2 '//article[./section/paragraph]' | head -1
  $ flexpath_cli index --file articles.xml -o articles.env
  $ flexpath_cli query --env articles.env -k 3 '//article[.contains("xml" and "streaming")]' > env.out
  $ diff dpo.out env.out
  $ flexpath_cli query --file articles.xml '//['
  $ flexpath_cli query --file missing.xml '//a'
  $ printf '<a>\n  <b></a>' > broken.xml
  $ flexpath_cli query --file broken.xml '//a'
  $ flexpath_cli query --file articles.xml --weights nonsense '//a'
  $ flexpath_cli query --file articles.xml '//a/b/c/d/e/f/g/h/i/j/k/l'
  $ flexpath_cli query --file articles.xml -k 5 --algo dpo --step-budget 1 '//article[./section[./algorithm and ./paragraph]]'
  $ flexpath_cli query --file articles.xml -k 3 --timeout-ms 0 '//article[./section/paragraph]'
  $ FLEXPATH_FAILPOINTS=exec.run flexpath_cli query --file articles.xml '//article[./section/paragraph]'
  $ FLEXPATH_FAILPOINTS=index.build flexpath_cli stats --file articles.xml
  $ flexpath_cli index --verify articles.env
  $ head -c 100 articles.env > trunc.env
  $ flexpath_cli query --env trunc.env -k 3 '//article' 2>&1
  $ flexpath_cli index --verify trunc.env
  $ cp articles.env garbage.env && printf 'junk' >> garbage.env
  $ flexpath_cli query --env garbage.env -k 3 '//article'
  $ cp articles.env flipped.env
  $ SIZE=$(wc -c < articles.env)
  $ printf '\377' | dd of=flipped.env bs=1 seek=$((SIZE - 9)) conv=notrunc 2>/dev/null
  $ flexpath_cli query --env flipped.env -k 3 '//article[.contains("xml" and "streaming")]' > flipped.out
  $ diff dpo.out flipped.out
  $ flexpath_cli index --verify flipped.env
  $ FLEXPATH_FAILPOINTS=storage_rename flexpath_cli index --file articles.xml -o articles.env
  $ FLEXPATH_FAILPOINTS=storage_write flexpath_cli index --file articles.xml -o articles.env
  $ ls *.tmp.* 2>/dev/null
  $ flexpath_cli index --verify articles.env
  $ flexpath_cli index --file articles.xml
  $ flexpath_cli index --file articles.xml -o a.env --verify b.env
