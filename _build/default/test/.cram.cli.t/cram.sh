  $ flexpath_cli generate --articles 5 --seed 3 -o articles.xml
  $ flexpath_cli stats --file articles.xml | head -2
  $ flexpath_cli query --file articles.xml -k 3 --algo dpo '//article[.contains("xml" and "streaming")]' > dpo.out
  $ flexpath_cli query --file articles.xml -k 3 --algo sso '//article[.contains("xml" and "streaming")]' > sso.out
  $ flexpath_cli query --file articles.xml -k 3 --algo hybrid '//article[.contains("xml" and "streaming")]' > hybrid.out
  $ diff dpo.out sso.out
  $ diff sso.out hybrid.out
  $ head -1 dpo.out
  $ flexpath_cli relax --file articles.xml '//article[./section/paragraph]' | head -2
  $ flexpath_cli query --file articles.xml -k 1 --weights structural=2 '//article[./section/paragraph]' | head -1
  $ flexpath_cli index --file articles.xml -o articles.env
  $ flexpath_cli query --env articles.env -k 3 '//article[.contains("xml" and "streaming")]' > env.out
  $ diff dpo.out env.out
  $ flexpath_cli query --file articles.xml '//['
  $ flexpath_cli query --file missing.xml '//a'
  $ printf '<a>\n  <b></a>' > broken.xml
  $ flexpath_cli query --file broken.xml '//a'
  $ flexpath_cli query --file articles.xml --weights nonsense '//a'
  $ flexpath_cli query --file articles.xml '//a/b/c/d/e/f/g/h/i/j/k/l'
  $ flexpath_cli query --file articles.xml -k 5 --algo dpo --step-budget 1 '//article[./section[./algorithm and ./paragraph]]'
  $ flexpath_cli query --file articles.xml -k 3 --timeout-ms 0 '//article[./section/paragraph]'
  $ FLEXPATH_FAILPOINTS=exec.run flexpath_cli query --file articles.xml '//article[./section/paragraph]'
  $ FLEXPATH_FAILPOINTS=index.build flexpath_cli stats --file articles.xml
