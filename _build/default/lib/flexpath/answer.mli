(** A ranked query answer. *)

type t = {
  node : Xmldom.Doc.elem;
  sscore : float;  (** Structural score (§4.3.2). *)
  kscore : float;  (** Keyword score: weighted sum of normalized IR scores. *)
  dropped_predicates : int;
      (** Number of original-closure predicates this answer fails;
          0 for exact matches. *)
}

val is_exact : t -> bool

val score : t -> Ranking.score

val compare_desc : Ranking.scheme -> t -> t -> int
(** Best first; ties broken by node id for determinism. *)

val of_exec : Joins.Exec.answer -> t

val sort_and_truncate : Ranking.scheme -> int -> t list -> t list
(** Top-K of Definition 4: sort best-first, keep [k]. *)

val pp : Xmldom.Doc.t -> Format.formatter -> t -> unit
