type scheme = Structure_first | Keyword_first | Combined

type score = { sscore : float; kscore : float }

let eps = 1e-9

let cmp_float_desc a b = if a > b +. eps then -1 else if b > a +. eps then 1 else 0

let compare_desc scheme a b =
  match scheme with
  | Structure_first -> (
    match cmp_float_desc a.sscore b.sscore with
    | 0 -> cmp_float_desc a.kscore b.kscore
    | c -> c)
  | Keyword_first -> (
    match cmp_float_desc a.kscore b.kscore with
    | 0 -> cmp_float_desc a.sscore b.sscore
    | c -> c)
  | Combined -> cmp_float_desc (a.sscore +. a.kscore) (b.sscore +. b.kscore)

let total scheme s =
  match scheme with
  | Structure_first -> s.sscore
  | Keyword_first -> s.kscore
  | Combined -> s.sscore +. s.kscore

let all = [ Structure_first; Keyword_first; Combined ]

let to_string = function
  | Structure_first -> "structure-first"
  | Keyword_first -> "keyword-first"
  | Combined -> "combined"

let of_string s =
  match String.lowercase_ascii s with
  | "structure-first" | "structure" | "ss" -> Ok Structure_first
  | "keyword-first" | "keyword" | "ks" -> Ok Keyword_first
  | "combined" | "sum" -> Ok Combined
  | other -> Error (Printf.sprintf "unknown ranking scheme %S" other)
