lib/flexpath/sso.ml: Answer Array Common Env Joins List Ranking Relax Stats
