lib/flexpath/sso.ml: Answer Array Common Dpo Env Guard Joins List Ranking Relax Stats
