lib/flexpath/error.ml: Format Printf
