lib/flexpath/dpo.ml: Answer Common Guard Hashtbl Joins List Ranking Relax Xmldom
