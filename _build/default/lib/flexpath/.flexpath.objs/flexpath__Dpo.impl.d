lib/flexpath/dpo.ml: Answer Common Hashtbl Joins List Ranking Relax Xmldom
