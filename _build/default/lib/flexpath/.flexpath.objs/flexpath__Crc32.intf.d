lib/flexpath/crc32.mli:
