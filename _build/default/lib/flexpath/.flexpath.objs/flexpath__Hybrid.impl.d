lib/flexpath/hybrid.ml: Sso
