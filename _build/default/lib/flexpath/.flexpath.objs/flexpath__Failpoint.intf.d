lib/flexpath/failpoint.mli:
