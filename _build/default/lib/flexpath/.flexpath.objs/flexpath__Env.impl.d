lib/flexpath/env.ml: Error Failpoint Fulltext Joins Relax Stats Tpq Xmldom
