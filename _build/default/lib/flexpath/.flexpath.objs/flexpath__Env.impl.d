lib/flexpath/env.ml: Format Fulltext Joins Relax Stats Tpq Xmldom
