lib/flexpath/storage.ml: Buffer Bytes Char Crc32 Env Error Failpoint Filename Format Fulltext Fun List Marshal Printf Relax Result Stats String Sys Tpq Unix Xmldom
