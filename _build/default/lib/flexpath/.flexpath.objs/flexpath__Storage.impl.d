lib/flexpath/storage.ml: Env Fulltext Marshal Printf Relax Stats String Tpq Xmldom
