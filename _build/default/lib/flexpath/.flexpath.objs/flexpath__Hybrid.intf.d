lib/flexpath/hybrid.mli: Common Env Guard Ranking Tpq
