lib/flexpath/hybrid.mli: Common Env Ranking Tpq
