lib/flexpath/guard.ml: Unix
