lib/flexpath/answer.ml: Format Int Joins List Printf Ranking Xmldom
