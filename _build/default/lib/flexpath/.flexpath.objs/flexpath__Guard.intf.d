lib/flexpath/guard.mli:
