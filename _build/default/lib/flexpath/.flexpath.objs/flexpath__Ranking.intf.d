lib/flexpath/ranking.mli:
