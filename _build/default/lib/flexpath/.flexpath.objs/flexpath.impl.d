lib/flexpath/flexpath.ml: Answer Common Dpo Env Hybrid Printf Ranking Result Sso Storage String Tpq
