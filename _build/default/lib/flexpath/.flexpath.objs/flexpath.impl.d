lib/flexpath/flexpath.ml: Answer Common Dpo Env Error Failpoint Guard Hybrid Joins Printf Ranking Result Sso Storage String Tpq
