lib/flexpath/common.ml: Answer Array Env Failpoint Float Fulltext Guard Hashtbl Joins List Logs Ranking Relax Tpq
