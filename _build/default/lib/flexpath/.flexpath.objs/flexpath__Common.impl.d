lib/flexpath/common.ml: Answer Array Env Float Fulltext Hashtbl Joins List Logs Ranking Relax Tpq
