lib/flexpath/failpoint.ml: Fulltext Hashtbl Joins List Printf String Sys
