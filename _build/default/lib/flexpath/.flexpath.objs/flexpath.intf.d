lib/flexpath/flexpath.mli: Answer Common Dpo Env Error Failpoint Guard Hybrid Ranking Sso Storage Tpq Xmldom
