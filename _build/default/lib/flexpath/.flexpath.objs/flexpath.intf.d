lib/flexpath/flexpath.mli: Answer Common Dpo Env Hybrid Ranking Sso Storage Tpq Xmldom
