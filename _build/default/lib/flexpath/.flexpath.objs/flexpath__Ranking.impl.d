lib/flexpath/ranking.ml: Printf String
