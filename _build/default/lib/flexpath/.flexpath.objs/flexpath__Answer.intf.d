lib/flexpath/answer.mli: Format Joins Ranking Xmldom
