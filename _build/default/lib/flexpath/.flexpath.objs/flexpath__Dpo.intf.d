lib/flexpath/dpo.mli: Common Env Guard Joins Ranking Tpq
