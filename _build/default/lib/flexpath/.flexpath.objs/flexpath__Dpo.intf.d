lib/flexpath/dpo.mli: Common Env Ranking Tpq
