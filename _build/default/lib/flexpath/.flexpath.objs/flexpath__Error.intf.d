lib/flexpath/error.mli: Format
