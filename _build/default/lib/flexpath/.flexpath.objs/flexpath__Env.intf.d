lib/flexpath/env.mli: Error Fulltext Joins Relax Stats Tpq Xmldom
