lib/flexpath/env.mli: Fulltext Joins Relax Stats Tpq Xmldom
