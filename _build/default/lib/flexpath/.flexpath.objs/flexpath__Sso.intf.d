lib/flexpath/sso.mli: Common Env Guard Ranking Relax Tpq
