lib/flexpath/sso.mli: Common Env Ranking Relax Tpq
