lib/flexpath/storage.mli: Env Relax
