lib/flexpath/storage.mli: Env Error Format Relax
