lib/flexpath/crc32.ml: Array Char Lazy String
