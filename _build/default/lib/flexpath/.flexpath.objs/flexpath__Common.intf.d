lib/flexpath/common.mli: Answer Env Joins Logs Ranking Relax Tpq
