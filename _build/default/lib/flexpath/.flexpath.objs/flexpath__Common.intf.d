lib/flexpath/common.mli: Answer Env Guard Joins Logs Ranking Relax Tpq
