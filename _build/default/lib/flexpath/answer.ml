type t = {
  node : Xmldom.Doc.elem;
  sscore : float;
  kscore : float;
  dropped_predicates : int;
}

let is_exact a = a.dropped_predicates = 0

let score a = { Ranking.sscore = a.sscore; kscore = a.kscore }

let compare_desc scheme a b =
  match Ranking.compare_desc scheme (score a) (score b) with
  | 0 -> Int.compare a.node b.node
  | c -> c

let of_exec (e : Joins.Exec.answer) =
  {
    node = e.target;
    sscore = e.sscore;
    kscore = e.kscore;
    dropped_predicates = List.length e.failed;
  }

let sort_and_truncate scheme k answers =
  let sorted = List.sort (compare_desc scheme) answers in
  List.filteri (fun i _ -> i < k) sorted

let pp doc fmt a =
  Format.fprintf fmt "%s  ss=%.4f ks=%.4f%s"
    (Xmldom.Doc.path_to_root doc a.node)
    a.sscore a.kscore
    (if is_exact a then "  exact"
     else Printf.sprintf "  (%d predicates relaxed)" a.dropped_predicates)
