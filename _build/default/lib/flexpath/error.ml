type t =
  | Xml_error of { path : string option; line : int; column : int; message : string }
  | Query_error of { offset : int; message : string }
  | Capacity of { what : string; limit : int; actual : int }
  | Io_error of { path : string; message : string }
  | Config_error of { what : string; message : string }
  | Fault of string

let to_string = function
  | Xml_error { path = Some p; line; column; message } ->
    Printf.sprintf "%s: line %d, column %d: %s" p line column message
  | Xml_error { path = None; line; column; message } ->
    Printf.sprintf "line %d, column %d: %s" line column message
  | Query_error { offset; message } -> Printf.sprintf "at offset %d: %s" offset message
  | Capacity { what; limit; actual } ->
    Printf.sprintf "capacity exceeded: %s (%d > limit %d)" what actual limit
  | Io_error { path = ""; message } -> message
  | Io_error { path; message } -> Printf.sprintf "%s: %s" path message
  | Config_error { what; message } -> Printf.sprintf "bad %s: %s" what message
  | Fault point -> Printf.sprintf "injected fault at %s" point

let pp fmt e = Format.pp_print_string fmt (to_string e)

let exit_code = function
  | Xml_error _ | Query_error _ -> 2
  | Capacity _ | Io_error _ | Config_error _ | Fault _ -> 1
