module Ranking = Ranking
module Env = Env
module Answer = Answer
module Common = Common
module Dpo = Dpo
module Sso = Sso
module Hybrid = Hybrid
module Storage = Storage

type algorithm = DPO | SSO | Hybrid

let algorithm_to_string = function DPO -> "dpo" | SSO -> "sso" | Hybrid -> "hybrid"

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "dpo" -> Ok DPO
  | "sso" -> Ok SSO
  | "hybrid" -> Ok Hybrid
  | other -> Error (Printf.sprintf "unknown algorithm %S (expected dpo, sso or hybrid)" other)

let all_algorithms = [ DPO; SSO; Hybrid ]

let run ?(algorithm = Hybrid) ?(scheme = Ranking.Structure_first) ?max_steps env ~k q =
  match algorithm with
  | DPO -> Dpo.run ?max_steps env ~scheme ~k q
  | SSO -> Sso.run ?max_steps env ~scheme ~k q
  | Hybrid -> Hybrid.run ?max_steps env ~scheme ~k q

let top_k ?algorithm ?scheme ?max_steps env ~k q =
  (run ?algorithm ?scheme ?max_steps env ~k q).Common.answers

let top_k_xpath ?algorithm ?scheme ?max_steps env ~k s =
  Result.map (top_k ?algorithm ?scheme ?max_steps env ~k) (Tpq.Xpath.parse s)

let exact_answers (env : Env.t) q =
  Tpq.Semantics.answers ~hierarchy:env.hierarchy env.doc env.index q
