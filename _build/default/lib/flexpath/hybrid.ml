let run ?max_steps env ~scheme ~k q =
  Sso.run_with ?max_steps ~sort_on_score:false ~bucketize:true env ~scheme ~k q
