(** Shared machinery of the three top-K algorithms (§5.1).

    All algorithms walk the same penalty-ordered relaxation chain
    [Q = Q0 ⊂ Q1 ⊂ ...] ({!Relax.Space.sequence}) and differ in how
    much of it they evaluate and how.  Early termination is sound: any
    answer not yet produced by relaxation [Qi] must violate at least
    one closure predicate [Qi] still enforces, so its structural score
    is at most [base − min π(p)] over those predicates
    ({!unseen_bound}); once the current K-th answer reaches that bound
    no further relaxation can change the top-K. *)

val log_src : Logs.src
(** Log source ["flexpath"]: debug-level traces of chain construction,
    cut selection and pass counts. *)

module Log : Logs.LOG

type result = {
  answers : Answer.t list;  (** Top-K, best first. *)
  metrics : Joins.Exec.metrics;
  relaxations_evaluated : int;
      (** Chain steps evaluated (DPO) or encoded in the plan (SSO /
          Hybrid). *)
  passes : int;  (** Full evaluation passes over the data. *)
  restarts : int;  (** SSO/Hybrid restarts after underestimation. *)
}

val chain :
  Env.t -> ?max_steps:int -> Tpq.Query.t -> Relax.Penalty.t * Relax.Space.entry list
(** The penalty environment and greedy relaxation chain for a query
    (first entry is the original query itself). *)

val unseen_bound : Ranking.scheme -> Relax.Penalty.t -> Relax.Space.entry -> float
(** Upper bound on {!Ranking.total} of any answer not produced by the
    entry's query.  [neg_infinity] when every scored predicate is
    already dropped. *)

val kth_total : Ranking.scheme -> int -> Answer.t list -> float option
(** The K-th best primary score among collected answers; [None] when
    fewer than [k] are present. *)

val evaluate :
  ?metrics:Joins.Exec.metrics ->
  Env.t ->
  Relax.Penalty.t ->
  Tpq.Query.t ->
  Relax.Op.t list ->
  Joins.Exec.strategy ->
  Answer.t list
(** Evaluate the query obtained by applying [ops] to the original,
    scored against the original's closure. *)
