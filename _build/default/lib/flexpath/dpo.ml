let run ?max_steps env ~scheme ~k q =
  let penv, chain = Common.chain env ?max_steps q in
  let metrics = Joins.Exec.fresh_metrics () in
  (* An answer node can gain a better-scoring embedding once a deeper
     relaxation widens the embedding space, so keep the best score seen
     per node.  The stopping bound covers improvements too: an
     embedding invalid under the current relaxation scores at most
     [unseen_bound]. *)
  let best : (Xmldom.Doc.elem, Answer.t) Hashtbl.t = Hashtbl.create 64 in
  let passes = ref 0 in
  let rec go = function
    | [] -> ()
    | (entry : Relax.Space.entry) :: rest ->
      incr passes;
      let answers =
        Common.evaluate ~metrics env penv q entry.ops Joins.Exec.exact_strategy
      in
      List.iter
        (fun (a : Answer.t) ->
          match Hashtbl.find_opt best a.node with
          | None -> Hashtbl.replace best a.node a
          | Some prev ->
            if Ranking.compare_desc scheme (Answer.score a) (Answer.score prev) < 0 then
              Hashtbl.replace best a.node a)
        answers;
      let collected = Hashtbl.fold (fun _ a acc -> a :: acc) best [] in
      let finished =
        match Common.kth_total scheme k collected with
        | None -> false
        | Some kth -> kth >= Common.unseen_bound scheme penv entry -. 1e-9
      in
      if not finished then go rest
  in
  go chain;
  Common.Log.debug (fun m -> m "DPO: %d passes, %d distinct answers" !passes (Hashtbl.length best));
  let collected = Hashtbl.fold (fun _ a acc -> a :: acc) best [] in
  {
    Common.answers = Answer.sort_and_truncate scheme k collected;
    metrics;
    relaxations_evaluated = !passes;
    passes = !passes;
    restarts = 0;
  }
