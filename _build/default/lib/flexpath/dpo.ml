let run ?max_steps ?(guard = Guard.none) ?metrics env ~scheme ~k q =
  let penv, chain = Common.chain env ?max_steps q in
  let metrics = match metrics with Some m -> m | None -> Joins.Exec.fresh_metrics () in
  let cancel = Guard.cancel_fn guard in
  (* An answer node can gain a better-scoring embedding once a deeper
     relaxation widens the embedding space, so keep the best score seen
     per node.  The stopping bound covers improvements too: an
     embedding invalid under the current relaxation scores at most
     [unseen_bound]. *)
  let best : (Xmldom.Doc.elem, Answer.t) Hashtbl.t = Hashtbl.create 64 in
  let passes = ref 0 in
  (* The deepest entry whose pass ran to completion: budget truncation
     reports [unseen_bound] of this entry as the sound score bound for
     whatever was not collected. *)
  let last_completed = ref None in
  let completeness = ref Common.Complete in
  let truncate reason =
    completeness :=
      Common.Truncated { reason; score_bound = Common.truncation_bound scheme penv !last_completed }
  in
  let rec go = function
    | [] -> ()
    | (entry : Relax.Space.entry) :: rest -> (
      match Guard.pass_allowed guard ~passes:!passes with
      | Some reason -> truncate reason
      | None -> (
        incr passes;
        match Common.evaluate ~metrics ?cancel env penv q entry.ops Joins.Exec.exact_strategy with
        | exception Joins.Exec.Cancelled ->
          (* The pass was abandoned mid-join: nothing of it is kept, the
             bound stays that of the last completed entry. *)
          truncate
            (match Guard.tripped guard with Some r -> r | None -> Guard.Deadline)
        | answers ->
          List.iter
            (fun (a : Answer.t) ->
              match Hashtbl.find_opt best a.node with
              | None -> Hashtbl.replace best a.node a
              | Some prev ->
                if Ranking.compare_desc scheme (Answer.score a) (Answer.score prev) < 0 then
                  Hashtbl.replace best a.node a)
            answers;
          last_completed := Some entry;
          let collected = Hashtbl.fold (fun _ a acc -> a :: acc) best [] in
          let finished =
            match Common.kth_total scheme k collected with
            | None -> false
            | Some kth -> kth >= Common.unseen_bound scheme penv entry -. 1e-9
          in
          if not finished then go rest))
  in
  go chain;
  Common.Log.debug (fun m -> m "DPO: %d passes, %d distinct answers" !passes (Hashtbl.length best));
  let collected = Hashtbl.fold (fun _ a acc -> a :: acc) best [] in
  {
    Common.answers = Answer.sort_and_truncate scheme k collected;
    metrics;
    relaxations_evaluated = !passes;
    passes = !passes;
    restarts = 0;
    completeness = !completeness;
    degraded = false;
  }
