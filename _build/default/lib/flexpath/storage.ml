(* Crash-safe snapshot storage.

   Format v2 — a self-describing, sectioned, checksummed layout:

     offset 0   magic "FLEXPATH-ENV"                        12 bytes
     offset 12  format version                               1 byte
     offset 13  section count (u32 LE)                       4 bytes
     offset 17  table of contents, one entry per section:
                  tag (4 bytes) | payload length (u32 LE) | payload CRC-32 (u32 LE)
     ...        header CRC-32 (u32 LE) over every byte above it
     ...        section payloads, concatenated in TOC order
     ...        footer: "FEND" | file CRC-32 (u32 LE) over every byte
                before the CRC field (footer tag included)
     EOF        anything after the footer is trailing garbage

   The four sections are the arena document, the inverted index, the
   statistics tables and the type hierarchy, each an independent
   [Marshal] payload (the index and statistics in document-stripped
   portable form, so the document is stored exactly once).  Every
   payload is CRC-checked before [Marshal.from_string] ever sees it, so
   a bit-flipped or truncated snapshot yields a typed error instead of
   undefined unmarshaling behaviour.

   [save] is atomic: the snapshot is assembled in memory, written to a
   temp file in the destination directory, fsynced, and renamed over
   the destination — a crash at any byte offset leaves any pre-existing
   snapshot byte-identical.  [load] degrades gracefully: damage
   confined to the derived sections (index, statistics, hierarchy) is
   repaired by rebuilding them from the intact document section.

   Format v1 (a bare Marshal payload behind a magic number) is read
   back for migration, but no longer written. *)

let magic = "FLEXPATH-ENV"
let format_version = 2
let footer_tag = "FEND"
let header_fixed = String.length magic + 1 + 4 (* magic, version, section count *)
let toc_entry_size = 4 + 4 + 4 (* tag, length, crc *)
let footer_size = String.length footer_tag + 4
let max_sections = 1024 (* sanity bound: a count above this is damage, not data *)

type outcome =
  | Intact
  | Recovered of { rebuilt : string list }
  | Migrated of { version : int }

let outcome_to_string = function
  | Intact -> "intact"
  | Recovered { rebuilt } -> Printf.sprintf "recovered (rebuilt: %s)" (String.concat ", " rebuilt)
  | Migrated { version } -> Printf.sprintf "migrated from format v%d" version

let section_name = function
  | "DOCM" -> "document"
  | "INDX" -> "index"
  | "STAT" -> "statistics"
  | "HIER" -> "hierarchy"
  | tag -> Printf.sprintf "unknown section %S" tag

let snap path corruption = Error (Error.Snapshot_error { path; corruption })

(* ------------------------------------------------------------------ *)
(* Little-endian u32 *)

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* ------------------------------------------------------------------ *)
(* Assembly *)

let assemble (env : Env.t) =
  let sections =
    [
      ("DOCM", Marshal.to_string (env.doc : Xmldom.Doc.t) []);
      ("INDX", Marshal.to_string (Fulltext.Index.to_portable env.index) []);
      ("STAT", Marshal.to_string (Stats.to_portable env.stats) []);
      ("HIER", Marshal.to_string (env.hierarchy : Tpq.Hierarchy.t) []);
    ]
  in
  let total = List.fold_left (fun acc (_, p) -> acc + String.length p) 0 sections in
  let b = Buffer.create (header_fixed + (List.length sections * toc_entry_size) + 4 + total + footer_size) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr format_version);
  add_u32 b (List.length sections);
  List.iter
    (fun (tag, payload) ->
      assert (String.length tag = 4);
      Buffer.add_string b tag;
      add_u32 b (String.length payload);
      add_u32 b (Crc32.string payload))
    sections;
  add_u32 b (Crc32.string ~len:(Buffer.length b) (Buffer.contents b));
  List.iter (fun (_, payload) -> Buffer.add_string b payload) sections;
  Buffer.add_string b footer_tag;
  add_u32 b (Crc32.string ~len:(Buffer.length b) (Buffer.contents b));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Atomic save *)

(* Durability of the rename itself needs the directory fsynced; best
   effort — some filesystems refuse fsync on a directory fd. *)
let fsync_dir dir =
  match Unix.openfile (if dir = "" then Filename.current_dir_name else dir) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let save (env : Env.t) path =
  try
    (* Serialize before touching the filesystem: a Marshal failure
       (functional value, out of memory) must not leave debris. *)
    let data = assemble env in
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    let committed = ref false in
    Fun.protect
      ~finally:(fun () ->
        close_out_noerr oc;
        if not !committed then try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        Failpoint.hit "storage_write";
        output_string oc data;
        flush oc;
        Failpoint.hit "storage_fsync";
        Unix.fsync (Unix.descr_of_out_channel oc);
        close_out oc;
        Failpoint.hit "storage_rename";
        Sys.rename tmp path;
        committed := true);
    fsync_dir (Filename.dirname path);
    Ok ()
  with
  | Sys_error message -> Error (Error.Io_error { path = ""; message })
  | Unix.Unix_error (e, fn, _) ->
    Error (Error.Io_error { path; message = Printf.sprintf "%s: %s" fn (Unix.error_message e) })
  | Failure message -> Error (Error.Io_error { path; message })
  | Failpoint.Injected p -> Error (Error.Fault p)

(* ------------------------------------------------------------------ *)
(* v1: bare Marshal behind "FLEXPATH-ENV\x01".  Read-only; the corpus
   of deployed snapshots migrates by re-saving.  No checksums exist, so
   the Marshal payload is trusted the way v1 always trusted it. *)

type v1_payload = {
  v1_doc : Xmldom.Doc.t;
  v1_index : Fulltext.Index.t;
  v1_stats : Stats.t;
  v1_hierarchy : Tpq.Hierarchy.t;
}

let v1_magic = magic ^ "\x01"

let save_v1 (env : Env.t) path =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc v1_magic;
        Marshal.to_channel oc
          { v1_doc = env.doc; v1_index = env.index; v1_stats = env.stats; v1_hierarchy = env.hierarchy }
          []);
    Ok ()
  with
  | Sys_error message -> Error (Error.Io_error { path = ""; message })
  | Failure message -> Error (Error.Io_error { path; message })

let load_v1 ~weights path data =
  let ofs = String.length v1_magic in
  if String.length data < ofs + Marshal.header_size then
    snap path (Error.Truncated { at = "v1 marshal payload" })
  else
    (* The Marshal header states the payload size, so cuts and appended
       bytes are distinguishable even without v2's checksums. *)
    match Marshal.total_size (Bytes.unsafe_of_string data) ofs with
    | exception Failure message ->
      snap path (Error.Malformed_section { section = "v1 marshal payload"; message })
    | total when ofs + total > String.length data ->
      snap path (Error.Truncated { at = "v1 marshal payload" })
    | total when ofs + total < String.length data ->
      snap path (Error.Trailing_garbage { bytes = String.length data - ofs - total })
    | _ -> (
      match (Marshal.from_string data ofs : v1_payload) with
      | payload ->
        Ok
          ( Env.of_parts ~weights ~doc:payload.v1_doc ~index:payload.v1_index
              ~stats:payload.v1_stats ~hierarchy:payload.v1_hierarchy (),
            Migrated { version = 1 } )
      | exception Failure message ->
        snap path (Error.Malformed_section { section = "v1 marshal payload"; message })
      | exception End_of_file -> snap path (Error.Truncated { at = "v1 marshal payload" }))

(* ------------------------------------------------------------------ *)
(* Parsing the v2 layout (shared by load and verify) *)

type parsed_section = {
  s_tag : string;
  s_off : int; (* absolute byte offset of the payload *)
  s_len : int;
  s_present : bool; (* payload lies fully within the file *)
  s_crc_ok : bool; (* present and checksum matches *)
}

type parsed = {
  p_sections : parsed_section list;
  p_footer_ok : bool;
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error message -> Error (Error.Io_error { path = ""; message })
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Ok (really_input_string ic (in_channel_length ic))
        with
        | Sys_error message -> Error (Error.Io_error { path; message })
        | End_of_file -> snap path (Error.Truncated { at = "file" }))

(* Classify the container.  Hard damage (header, document section,
   trailing garbage) is an [Error]; damage confined to derived
   sections or the footer is reported in [parsed] for recovery. *)
let parse_v2_exn path data =
  let len = String.length data in
  if len < header_fixed then snap path (Error.Truncated { at = "header" })
  else begin
    let count = get_u32 data (header_fixed - 4) in
    if count > max_sections then snap path (Error.Checksum_mismatch { section = "header" })
    else begin
      let header_len = header_fixed + (count * toc_entry_size) + 4 in
      if len < header_len then snap path (Error.Truncated { at = "header" })
      else if get_u32 data (header_len - 4) <> Crc32.string ~len:(header_len - 4) data then
        snap path (Error.Checksum_mismatch { section = "header" })
      else begin
        let sections = ref [] in
        let off = ref header_len in
        for i = 0 to count - 1 do
          let e = header_fixed + (i * toc_entry_size) in
          let tag = String.sub data e 4 in
          let s_len = get_u32 data (e + 4) in
          let crc = get_u32 data (e + 8) in
          let present = !off + s_len <= len in
          Failpoint.hit "storage_read_section";
          let crc_ok = present && Crc32.string ~pos:!off ~len:s_len data = crc in
          sections :=
            { s_tag = tag; s_off = !off; s_len; s_present = present; s_crc_ok = crc_ok }
            :: !sections;
          off := !off + s_len
        done;
        let sections = List.rev !sections in
        let expected = !off + footer_size in
        if len > expected then snap path (Error.Trailing_garbage { bytes = len - expected })
        else begin
          let footer_ok =
            len = expected
            && String.sub data !off 4 = footer_tag
            && get_u32 data (!off + 4) = Crc32.string ~len:(!off + 4) data
          in
          Ok { p_sections = sections; p_footer_ok = footer_ok }
        end
      end
    end
  end

let parse_v2 path data =
  match parse_v2_exn path data with
  | r -> r
  | exception Failpoint.Injected p -> Error (Error.Fault p)

let find_section parsed tag = List.find_opt (fun s -> s.s_tag = tag) parsed.p_sections

(* ------------------------------------------------------------------ *)
(* Load *)

let unmarshal_section : 'a. string -> parsed_section -> 'a option =
 fun data s ->
  match (Marshal.from_string data s.s_off : 'a) with
  | v -> Some v
  | exception (Failure _ | End_of_file | Invalid_argument _) -> None

(* The version byte, or the typed reason there is none.  A short file
   that agrees with the magic as far as it goes was cut mid-header; any
   disagreement means it was never a snapshot. *)
let classify_head path data =
  let mlen = String.length magic in
  if String.length data > mlen then
    if String.sub data 0 mlen = magic then Ok (Char.code data.[mlen]) else snap path Error.Bad_magic
  else if data = String.sub magic 0 (String.length data) then
    snap path (Error.Truncated { at = "header" })
  else snap path Error.Bad_magic

let load ?(weights = Relax.Penalty.uniform) path =
  match read_file path with
  | Error e -> Error e
  | Ok data -> (
    match classify_head path data with
    | Error e -> Error e
    | Ok version -> (
      match version with
      | 1 -> load_v1 ~weights path data
      | 2 -> (
        match parse_v2 path data with
        | Error e -> Error e
        | Ok parsed -> (
          match find_section parsed "DOCM" with
          | None ->
            snap path
              (Error.Malformed_section { section = "header"; message = "no document section" })
          | Some ds when not ds.s_present -> snap path (Error.Truncated { at = "document" })
          | Some ds when not ds.s_crc_ok ->
            snap path (Error.Checksum_mismatch { section = "document" })
          | Some ds -> (
            match (unmarshal_section data ds : Xmldom.Doc.t option) with
            | None ->
              snap path
                (Error.Malformed_section
                   { section = "document"; message = "payload does not deserialize" })
            | Some doc ->
              (* Derived sections: deserialize what survived, rebuild
                 the rest from the document. *)
              let derived tag of_payload =
                match find_section parsed tag with
                | Some s when s.s_crc_ok -> (
                  match unmarshal_section data s with
                  | Some payload -> (
                    match of_payload payload with
                    | v -> (Some v, false)
                    | exception Invalid_argument _ -> (None, true))
                  | None -> (None, true))
                | _ -> (None, true)
              in
              let index, index_rebuilt = derived "INDX" (Fulltext.Index.of_portable doc) in
              let stats, stats_rebuilt = derived "STAT" (Stats.of_portable doc) in
              let hierarchy, hier_rebuilt = derived "HIER" (fun (h : Tpq.Hierarchy.t) -> h) in
              let env = Env.rebuild ~weights ?index ?stats ?hierarchy doc in
              let rebuilt =
                (if index_rebuilt then [ "index" ] else [])
                @ (if stats_rebuilt then [ "statistics" ] else [])
                @ if hier_rebuilt then [ "hierarchy" ] else []
              in
              let outcome =
                if rebuilt = [] && parsed.p_footer_ok then Intact else Recovered { rebuilt }
              in
              Ok (env, outcome))))
      | v -> snap path (Error.Version_skew { found = v; newest = format_version })))

let load_env ?weights path = Result.map fst (load ?weights path)

(* ------------------------------------------------------------------ *)
(* Verify *)

type section_report = { name : string; offset : int; bytes : int; ok : bool }

type report = {
  version : int;
  sections : section_report list;
  footer_ok : bool;
  intact : bool;
  recoverable : bool;
}

let verify path =
  match read_file path with
  | Error e -> Error e
  | Ok data -> (
    let mlen = String.length magic in
    match classify_head path data with
    | Error e -> Error e
    | Ok version -> (
      match version with
      | 1 ->
        (* No checksums to verify: the only possible check is whether
           the payload deserializes at all. *)
        let ok =
          match (Marshal.from_string data (mlen + 1) : v1_payload) with
          | _ -> true
          | exception (Failure _ | End_of_file | Invalid_argument _) -> false
        in
        Ok
          {
            version = 1;
            sections =
              [
                {
                  name = "v1 marshal payload";
                  offset = mlen + 1;
                  bytes = String.length data - mlen - 1;
                  ok;
                };
              ];
            footer_ok = ok;
            intact = ok;
            recoverable = false;
          }
      | 2 -> (
        match parse_v2 path data with
        | Error e -> Error e
        | Ok parsed ->
          let sections =
            List.map
              (fun s ->
                { name = section_name s.s_tag; offset = s.s_off; bytes = s.s_len; ok = s.s_crc_ok })
              parsed.p_sections
          in
          let all_ok = List.for_all (fun s -> s.ok) sections in
          let doc_ok =
            match find_section parsed "DOCM" with Some s -> s.s_crc_ok | None -> false
          in
          Ok
            {
              version = 2;
              sections;
              footer_ok = parsed.p_footer_ok;
              intact = all_ok && parsed.p_footer_ok;
              recoverable = doc_ok;
            })
      | v -> snap path (Error.Version_skew { found = v; newest = format_version })))

let pp_report fmt r =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "format v%d, %d section%s@," r.version (List.length r.sections)
    (if List.length r.sections = 1 then "" else "s");
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-18s offset %-8d %8d bytes  %s@," s.name s.offset s.bytes
        (if s.ok then "ok" else "CORRUPT"))
    r.sections;
  if r.version >= 2 then
    Format.fprintf fmt "  footer%s@," (if r.footer_ok then " ok" else " CORRUPT");
  if r.intact then Format.fprintf fmt "intact"
  else if r.recoverable then
    Format.fprintf fmt
      "corrupt, recoverable (document section intact; derived sections will be rebuilt on load)"
  else Format.fprintf fmt "corrupt, not recoverable";
  Format.pp_close_box fmt ()
