let magic = "FLEXPATH-ENV\x01"

(* Everything except the weight function (closures do not marshal). *)
type payload = {
  doc : Xmldom.Doc.t;
  index : Fulltext.Index.t;
  stats : Stats.t;
  hierarchy : Tpq.Hierarchy.t;
}

let save (env : Env.t) path =
  try
    let oc = open_out_bin path in
    output_string oc magic;
    Marshal.to_channel oc
      { doc = env.doc; index = env.index; stats = env.stats; hierarchy = env.hierarchy }
      [];
    close_out oc;
    Ok ()
  with Sys_error msg -> Error msg

let load ?(weights = Relax.Penalty.uniform) path =
  try
    let ic = open_in_bin path in
    let finish r =
      close_in ic;
      r
    in
    let header = really_input_string ic (String.length magic) in
    if header <> magic then
      finish (Error (Printf.sprintf "%s: not a FleXPath environment file" path))
    else begin
      let payload : payload = Marshal.from_channel ic in
      finish
        (Ok
           {
             Env.doc = payload.doc;
             index = payload.index;
             stats = payload.stats;
             hierarchy = payload.hierarchy;
             weights;
           })
    end
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error (Printf.sprintf "%s: truncated environment file" path)
  | Failure msg -> Error (Printf.sprintf "%s: %s" path msg)
