(** Query-processing environment: a document with its full-text index,
    statistics and predicate weights — everything Figure 7's
    architecture shares between the XPath engine, the IR engine and the
    relaxation machinery. *)

type t = {
  doc : Xmldom.Doc.t;
  index : Fulltext.Index.t;
  stats : Stats.t;
  weights : Relax.Penalty.weights;
  hierarchy : Tpq.Hierarchy.t;
}

val make :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Doc.t ->
  t
(** Builds the index and statistics (and attaches the index to the
    statistics for [#contains] counting).  Default weights are uniform
    1, as in Example 1; the default hierarchy is empty (tags match
    exactly); the default scorer is tf-idf.
    @raise Failpoint.Injected when an env-build failpoint is armed —
    use {!build} for the result-typed construction path. *)

val build :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Doc.t ->
  (t, Error.t) result
(** {!make} with injected faults reified as [Error.Fault]; never
    raises. *)

val of_tree :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Xml.t ->
  t

val of_string :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  string ->
  (t, Error.t) result
(** Parses, indexes and never raises: malformed XML becomes
    [Error.Xml_error] with the parser's 1-based line/column. *)

val of_file :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  string ->
  (t, Error.t) result
(** Like {!of_string} from a file; unreadable files become
    [Error.Io_error]. *)

val penalty_env : t -> Tpq.Query.t -> Relax.Penalty.t
(** Penalty environment for one original query. *)

val exec_env : t -> Relax.Penalty.t -> Joins.Exec.env
