(** Query-processing environment: a document with its full-text index,
    statistics and predicate weights — everything Figure 7's
    architecture shares between the XPath engine, the IR engine and the
    relaxation machinery. *)

type t = {
  doc : Xmldom.Doc.t;
  index : Fulltext.Index.t;
  stats : Stats.t;
  weights : Relax.Penalty.weights;
  hierarchy : Tpq.Hierarchy.t;
}

val make :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Doc.t ->
  t
(** Builds the index and statistics (and attaches the index to the
    statistics for [#contains] counting).  Default weights are uniform
    1, as in Example 1; the default hierarchy is empty (tags match
    exactly); the default scorer is tf-idf. *)

val of_tree :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Xml.t ->
  t

val of_string :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  string ->
  (t, string) result

val penalty_env : t -> Tpq.Query.t -> Relax.Penalty.t
(** Penalty environment for one original query. *)

val exec_env : t -> Relax.Penalty.t -> Joins.Exec.env
