(** Saving and loading indexed environments.

    Building the index and statistics is a full pass over the document;
    for repeated querying of the same collection, [save] writes the
    arena document, inverted index, statistics and type hierarchy to a
    versioned binary file that [load] restores without re-parsing or
    re-indexing.

    Predicate weights are functions and cannot be persisted; supply
    them again at load time (default uniform). *)

val save : Env.t -> string -> (unit, string) result
(** [save env path]. *)

val load : ?weights:Relax.Penalty.weights -> string -> (Env.t, string) result
(** [load path] — fails on missing files, foreign files (magic-number
    check) and version mismatches.  The file must come from the same
    program version: the format is OCaml's Marshal. *)

val magic : string
(** First bytes of every environment file. *)
