(** DPO — Dynamic Penalty Order (§5.1.1).

    Evaluates the relaxation chain one query at a time, in increasing
    penalty order, re-running a full evaluation pass per step, and stops
    as soon as the collected top-K can no longer change.  Its strength
    is exact knowledge (no estimates, no wasted relaxations); its
    weakness is the repeated passes over the data, which the experiments
    of §6 measure against SSO and Hybrid. *)

val run :
  ?max_steps:int ->
  Env.t ->
  scheme:Ranking.scheme ->
  k:int ->
  Tpq.Query.t ->
  Common.result
