(** FleXPath: flexible structure and full-text querying for XML
    (Amer-Yahia, Lakshmanan, Pandit — SIGMOD 2004).

    The façade for the whole system.  Typical use:

    {[
      let env = Flexpath.Env.of_string xml_text |> Result.get_ok in
      let result =
        Flexpath.top_k_xpath env ~k:10
          "//article[./section[./algorithm and \
           ./paragraph[.contains(\"XML\" and \"streaming\")]]]"
        |> Result.get_ok
      in
      List.iter
        (fun a -> Format.printf "%a@." (Flexpath.Answer.pp env.doc) a)
        result.answers
    ]}

    The structural part of the query is a template: answers matching it
    exactly come first, answers matching a relaxation follow with
    scores discounted by data-derived penalties (§3, §4). *)

module Ranking = Ranking
module Env = Env
module Answer = Answer
module Common = Common
module Dpo = Dpo
module Sso = Sso
module Hybrid = Hybrid
module Storage = Storage

type algorithm = DPO | SSO | Hybrid

val algorithm_to_string : algorithm -> string
val algorithm_of_string : string -> (algorithm, string) result
val all_algorithms : algorithm list

val run :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  Env.t ->
  k:int ->
  Tpq.Query.t ->
  Common.result
(** Top-K evaluation.  Defaults: [Hybrid], [Structure_first]. *)

val top_k :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  Env.t ->
  k:int ->
  Tpq.Query.t ->
  Answer.t list

val top_k_xpath :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  Env.t ->
  k:int ->
  string ->
  (Answer.t list, string) result
(** Parse the XPath fragment, then {!top_k}. *)

val exact_answers : Env.t -> Tpq.Query.t -> Xmldom.Doc.elem list
(** Classical exact-match semantics (no relaxation) — the baseline the
    flexible semantics consistently extends. *)
