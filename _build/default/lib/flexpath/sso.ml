let pick_cut env ~scheme ~k chain =
  let n = List.length chain in
  match scheme with
  | Ranking.Keyword_first -> n - 1
  | Ranking.Structure_first | Ranking.Combined ->
    let rec go i = function
      | [] -> n - 1
      | (entry : Relax.Space.entry) :: rest ->
        if Stats.estimate_answers env.Env.stats entry.query >= float_of_int k then i
        else go (i + 1) rest
    in
    go 0 chain

(* Pruning per §5.1: full strength for structure-first, slack of [m]
   (the weight of the contains predicates) for Combined, and none at
   all for keyword-first — "an answer with the worst structural score
   might still make it to the top-K". *)
let prune_for scheme penv k =
  match scheme with
  | Ranking.Structure_first -> (Some k, 0.0)
  | Ranking.Combined -> (Some k, Relax.Penalty.max_keyword_score penv)
  | Ranking.Keyword_first -> (None, 0.0)

let run_with ?(max_steps = 32) ~sort_on_score ~bucketize env ~scheme ~k q =
  let penv, chain = Common.chain env ~max_steps q in
  let chain_arr = Array.of_list chain in
  let metrics = Joins.Exec.fresh_metrics () in
  let cut = pick_cut env ~scheme ~k chain in
  (* §5.1: having estimated that relaxations up to [cut] yield K
     answers, also encode every further relaxation that could still
     contribute a top-K answer — the smallest j with score bound below
     the K-th score the [cut]-level answers guarantee.  This keeps the
     evaluation to a single plan unless the estimate itself was bad. *)
  let cut =
    let floor_score = chain_arr.(cut).Relax.Space.score in
    let rec extend j =
      if j >= Array.length chain_arr - 1 then j
      else if Common.unseen_bound scheme penv chain_arr.(j) <= floor_score +. 1e-9 then j
      else extend (j + 1)
    in
    extend cut
  in
  let prune_k, prune_slack = prune_for scheme penv k in
  let strategy = { Joins.Exec.sort_on_score; bucketize; prune_k; prune_slack } in
  let rec attempt cut restarts passes =
    let entry = chain_arr.(cut) in
    Common.Log.debug (fun m ->
        m "SSO/Hybrid: evaluating cut %d (%d relaxations, score floor %.3f), attempt %d" cut
          (List.length entry.Relax.Space.ops)
          entry.Relax.Space.score (restarts + 1));
    let answers = Common.evaluate ~metrics env penv q entry.ops strategy in
    let enough =
      match Common.kth_total scheme k answers with
      | None -> false
      | Some kth -> kth >= Common.unseen_bound scheme penv entry -. 1e-9
    in
    if enough || cut >= Array.length chain_arr - 1 then
      {
        Common.answers = Answer.sort_and_truncate scheme k answers;
        metrics;
        relaxations_evaluated = List.length entry.ops;
        passes;
        restarts;
      }
    else attempt (cut + 1) (restarts + 1) (passes + 1)
  in
  attempt cut 0 1

let run ?max_steps env ~scheme ~k q =
  run_with ?max_steps ~sort_on_score:true ~bucketize:false env ~scheme ~k q
