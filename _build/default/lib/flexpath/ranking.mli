(** Ranking schemes (§4.3.2).

    An answer carries a structural score [ss] and a keyword score [ks];
    the three schemes combine them as the paper proposes:
    - [Structure_first]: order by the pair [(ss, ks)] lexicographically;
    - [Keyword_first]: order by [(ks, ss)];
    - [Combined]: order by the sum [ks + ss].

    All three are order-invariant (Theorem 3): they aggregate
    per-predicate weights that do not depend on the relaxation path. *)

type scheme = Structure_first | Keyword_first | Combined

type score = { sscore : float; kscore : float }

val compare_desc : scheme -> score -> score -> int
(** Best first: negative when the first argument ranks higher. *)

val total : scheme -> score -> float
(** The primary sort key ([ss], [ks] or [ks + ss]). *)

val all : scheme list
val to_string : scheme -> string
val of_string : string -> (scheme, string) result
