type t = {
  doc : Xmldom.Doc.t;
  index : Fulltext.Index.t;
  stats : Stats.t;
  weights : Relax.Penalty.weights;
  hierarchy : Tpq.Hierarchy.t;
}

let make ?(weights = Relax.Penalty.uniform) ?(hierarchy = Tpq.Hierarchy.empty) ?scorer doc =
  let index = Fulltext.Index.build ?scorer doc in
  let stats = Stats.build doc in
  Stats.set_index stats index;
  { doc; index; stats; weights; hierarchy }

let of_tree ?weights ?hierarchy ?scorer tree =
  make ?weights ?hierarchy ?scorer (Xmldom.Doc.of_tree tree)

let of_string ?weights ?hierarchy ?scorer s =
  match Xmldom.Doc.of_string s with
  | Ok doc -> Ok (make ?weights ?hierarchy ?scorer doc)
  | Error e -> Error (Format.asprintf "%a" Xmldom.Xml_parser.pp_error e)

let penalty_env env q = Relax.Penalty.make ~hierarchy:env.hierarchy env.stats env.weights q

let exec_env env penalty = { Joins.Exec.doc = env.doc; index = env.index; penalty }
