module Smap = Map.Make (String)

type t = { parent : string Smap.t }

let empty = { parent = Smap.empty }

let supertypes h tag =
  let rec go tag acc =
    match Smap.find_opt tag h.parent with
    | None -> List.rev acc
    | Some super -> go super (super :: acc)
  in
  go tag []

let add h ~sub ~super =
  if String.equal sub super then Error "a tag cannot be its own supertype"
  else if Smap.mem sub h.parent then
    Error (Printf.sprintf "%s already has a supertype" sub)
  else if List.mem sub (supertypes h super) then
    Error (Printf.sprintf "cycle: %s is already above %s" sub super)
  else Ok { parent = Smap.add sub super h.parent }

let of_list pairs =
  List.fold_left
    (fun acc (sub, super) -> Result.bind acc (fun h -> add h ~sub ~super))
    (Ok empty) pairs

let of_list_exn pairs =
  match of_list pairs with
  | Ok h -> h
  | Error msg -> invalid_arg ("Hierarchy.of_list_exn: " ^ msg)

let is_empty h = Smap.is_empty h.parent

let supertype h tag = Smap.find_opt tag h.parent

let subtypes h tag =
  Smap.fold
    (fun sub _ acc -> if List.mem tag (supertypes h sub) then sub :: acc else acc)
    h.parent []

let matches h ~query_tag ~element_tag =
  String.equal query_tag element_tag
  || (not (is_empty h)) && List.mem query_tag (supertypes h element_tag)

let tags h =
  Smap.fold
    (fun sub super acc ->
      let acc = if List.mem sub acc then acc else sub :: acc in
      if List.mem super acc then acc else super :: acc)
    h.parent []

let parse_file path =
  try
    let ic = open_in path in
    let rec lines acc n =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        Ok (List.rev acc)
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then lines acc (n + 1)
        else begin
          match String.index_opt line '<' with
          | None ->
            close_in ic;
            Error (Printf.sprintf "%s:%d: expected 'sub < super'" path n)
          | Some i ->
            let sub = String.trim (String.sub line 0 i) in
            let super = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            if sub = "" || super = "" then begin
              close_in ic;
              Error (Printf.sprintf "%s:%d: expected 'sub < super'" path n)
            end
            else lines ((sub, super) :: acc) (n + 1)
        end
    in
    Result.bind (lines [] 1) of_list
  with Sys_error msg -> Error msg
