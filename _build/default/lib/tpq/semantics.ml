module Doc = Xmldom.Doc
module Index = Fulltext.Index

type binding = (int * Doc.elem) list

let tag_ok hierarchy query_tag doc e =
  match query_tag with
  | None -> true
  | Some t -> Hierarchy.matches hierarchy ~query_tag:t ~element_tag:(Doc.tag_name doc e)

let satisfies_node ?(hierarchy = Hierarchy.empty) doc idx (n : Query.node) e =
  tag_ok hierarchy n.tag doc e
  && List.for_all (fun p -> Pred.eval_attr p (Doc.attribute doc e)) n.attrs
  && List.for_all (fun f -> Index.satisfies idx f e) n.contains

(* Merge pre-sorted element arrays (pairwise; the lists are short). *)
let merge_sorted a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    if a.(!i) <= b.(!j) then begin
      out.(!k) <- a.(!i);
      incr i
    end
    else begin
      out.(!k) <- b.(!j);
      incr j
    end;
    incr k
  done;
  Array.blit a !i out !k (na - !i);
  Array.blit b !j out !k (nb - !j);
  out

let candidates ?(hierarchy = Hierarchy.empty) doc (n : Query.node) =
  match n.tag with
  | None -> Array.init (Doc.size doc) Fun.id
  | Some t ->
    let base = Doc.by_tag_name doc t in
    if Hierarchy.is_empty hierarchy then base
    else
      List.fold_left
        (fun acc sub -> merge_sorted acc (Doc.by_tag_name doc sub))
        base (Hierarchy.subtypes hierarchy t)

(* Elements below [anc] that can bind a query node, respecting the axis. *)
let below hierarchy doc idx q v axis anc =
  let n = Query.node q v in
  match axis with
  | Query.Child ->
    List.filter (satisfies_node ~hierarchy doc idx n) (Doc.children doc anc)
  | Query.Descendant ->
    let pool = candidates ~hierarchy doc n in
    let lo = anc + 1 and hi = Doc.subtree_end doc anc in
    (* pool is sorted by pre-order id: slice the subtree range. *)
    let first =
      let lo' = ref 0 and hi' = ref (Array.length pool) in
      while !lo' < !hi' do
        let mid = (!lo' + !hi') / 2 in
        if pool.(mid) < lo then lo' := mid + 1 else hi' := mid
      done;
      !lo'
    in
    let out = ref [] in
    let i = ref first in
    while !i < Array.length pool && pool.(!i) < hi do
      let e = pool.(!i) in
      if satisfies_node ~hierarchy doc idx n e then out := e :: !out;
      incr i
    done;
    List.rev !out

let iter_matches hierarchy doc idx q f =
  (* Variables in root-first DFS order: every variable's parent is bound
     before the variable itself. *)
  let order = Query.descendant_vars q (Query.root q) in
  let rec go env = function
    | [] -> f (List.sort compare env)
    | v :: rest -> (
      match Query.parent q v with
      | None ->
        let n = Query.node q v in
        Array.iter
          (fun e -> if satisfies_node ~hierarchy doc idx n e then go ((v, e) :: env) rest)
          (candidates ~hierarchy doc n)
      | Some (p, axis) ->
        let anc = List.assoc p env in
        List.iter (fun e -> go ((v, e) :: env) rest) (below hierarchy doc idx q v axis anc))
  in
  go [] order

exception Stop

let matches ?(hierarchy = Hierarchy.empty) ?limit doc idx q =
  let out = ref [] in
  let count = ref 0 in
  (try
     iter_matches hierarchy doc idx q (fun env ->
         out := env :: !out;
         incr count;
         match limit with Some l when !count >= l -> raise Stop | _ -> ())
   with Stop -> ());
  List.rev !out

let count_matches ?(hierarchy = Hierarchy.empty) doc idx q =
  let n = ref 0 in
  iter_matches hierarchy doc idx q (fun _ -> incr n);
  !n

module Int_set = Set.Make (Int)

let answers ?(hierarchy = Hierarchy.empty) doc idx q =
  let d = Query.distinguished q in
  let acc = ref Int_set.empty in
  iter_matches hierarchy doc idx q (fun env -> acc := Int_set.add (List.assoc d env) !acc);
  Int_set.elements !acc

let holds_at ?(hierarchy = Hierarchy.empty) doc idx q e =
  let d = Query.distinguished q in
  let found = ref false in
  (try
     iter_matches hierarchy doc idx q (fun env ->
         if List.assoc d env = e then begin
           found := true;
           raise Stop
         end)
   with Stop -> ());
  !found
