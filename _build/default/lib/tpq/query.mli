(** Tree pattern queries (TPQ, §2.1): a rooted tree whose nodes are
    variables carrying value-based predicates, whose edges are
    parent-child or ancestor-descendant, and with one distinguished node
    identifying query answers.

    Variable ids are stable: relaxation operators delete and rewire
    nodes without renumbering, so predicate weights and penalties keyed
    by the original query's variables stay meaningful. *)

type axis = Child | Descendant

type node = {
  tag : string option;  (** [None] is the wildcard [*]. *)
  attrs : Pred.attr_pred list;
  contains : Fulltext.Ftexp.t list;
}

type t

val make :
  root:int ->
  nodes:(int * node) list ->
  edges:(int * int * axis) list ->
  distinguished:int ->
  (t, string) result
(** [make ~root ~nodes ~edges ~distinguished] builds a TPQ.  [edges] are
    [(parent, child, axis)].  Fails unless the edges form a tree rooted
    at [root] covering exactly [nodes], with [distinguished] among
    them. *)

val make_exn :
  root:int ->
  nodes:(int * node) list ->
  edges:(int * int * axis) list ->
  distinguished:int ->
  t

val node_spec :
  ?tag:string -> ?attrs:Pred.attr_pred list -> ?contains:Fulltext.Ftexp.t list -> unit -> node

(** {2 Accessors} *)

val root : t -> int
val distinguished : t -> int
val vars : t -> int list
(** Sorted. *)

val size : t -> int
val mem : t -> int -> bool
val node : t -> int -> node
val parent : t -> int -> (int * axis) option
(** [parent q v] is [(parent, axis of the edge into v)]; [None] for the
    root. *)

val children : t -> int -> (int * axis) list
(** Sorted by child var. *)

val descendant_vars : t -> int -> int list
(** Vars in the subtree rooted at [v], including [v]. *)

val is_leaf : t -> int -> bool
val leaves : t -> int list
val depth : t -> int -> int
val fresh_var : t -> int
(** A variable id not used by the query. *)

(** {2 Structure editing}

    These rebuild the query; they are the primitives the relaxation
    operators are written with.  All preserve variable identity. *)

val set_axis : t -> int -> axis -> t
(** [set_axis q v a] changes the axis of the edge into [v]. *)

val delete_leaf : t -> int -> (t, string) result
(** Removes leaf [v] (§3.5.2).  If [v] is distinguished, its parent
    becomes distinguished.  Fails if [v] is the root or not a leaf. *)

val reparent : t -> int -> int -> axis -> (t, string) result
(** [reparent q v p a] moves the subtree rooted at [v] under [p] with
    axis [a].  Fails if [v] is the root or [p] is inside [v]'s
    subtree. *)

val update_node : t -> int -> (node -> node) -> t

val move_contains : t -> from_var:int -> to_var:int -> Fulltext.Ftexp.t -> (t, string) result
(** Moves one [contains] predicate between variables (§3.5.4). *)

(** {2 Logical form} *)

val to_preds : t -> Pred.t list
(** The logical expression of the query (Figure 2): structural edge
    predicates plus all value-based predicates. *)

val structural_preds : t -> Pred.t list
val contains_preds : t -> (int * Fulltext.Ftexp.t) list

val of_preds : distinguished:int -> Pred.t list -> (t, string) result
(** Rebuild a TPQ from predicates: every non-root variable must have
    exactly one incoming structural predicate, [Pc] winning over [Ad]
    for the same pair; the result must be a tree.  This is how the core
    of a relaxed closure is turned back into a TPQ (§3.3). *)

(** {2 Comparison} *)

val equal : t -> t -> bool
(** Structural equality with identical variable ids. *)

val canonical_key : t -> string
(** A key equal for isomorphic queries (same shape, tags, predicates and
    distinguished position, up to variable renaming); used to
    de-duplicate the relaxation space. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering of tree and predicates, as in Figure 1. *)

val to_string : t -> string
