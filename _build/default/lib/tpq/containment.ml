module Ftexp = Fulltext.Ftexp

(* Can variable [v'] of [q'] map onto variable [v] of [q]?  Value-based
   predicates of [v'] must be implied at [v]; [cl] is the closure of
   [q]'s predicates, which carries the derived contains predicates.
   Under a type hierarchy, tag t at [v] implies tag t' at [v'] when
   every element of t's extension lies in t''s extension, i.e. t' is t
   or one of its supertypes. *)
let node_implied hierarchy q' q cl v' v =
  let n' = Query.node q' v' in
  let n = Query.node q v in
  (match n'.tag with
  | None -> true
  | Some t' -> (
    match n.tag with
    | Some t -> Hierarchy.matches hierarchy ~query_tag:t' ~element_tag:t
    | None -> false))
  && List.for_all (fun p -> List.mem p n.attrs) n'.attrs
  && List.for_all (fun f -> Pred.Set.mem (Pred.Contains (v, f)) cl) n'.contains

let homomorphism ?(hierarchy = Hierarchy.empty) q' q =
  let cl = Closure.closure_set (Pred.Set.of_list (Query.to_preds q)) in
  let order = Query.descendant_vars q' (Query.root q') in
  let q_vars = Query.vars q in
  let rec go env = function
    | [] -> true
    | v' :: rest ->
      let try_image v =
        (if v' = Query.distinguished q' then v = Query.distinguished q else true)
        && node_implied hierarchy q' q cl v' v
        && (match Query.parent q' v' with
           | None -> true
           | Some (p', axis) -> (
             let p = List.assoc p' env in
             match axis with
             | Query.Child -> Pred.Set.mem (Pred.Pc (p, v)) cl
             | Query.Descendant -> Pred.Set.mem (Pred.Ad (p, v)) cl))
        && go ((v', v) :: env) rest
      in
      List.exists try_image q_vars
  in
  go [] order

let contained ?hierarchy q q' = homomorphism ?hierarchy q' q

let equivalent_on ?hierarchy doc idx a b =
  Semantics.answers ?hierarchy doc idx a = Semantics.answers ?hierarchy doc idx b
