(** Closure and core of tree pattern queries (§3.2).

    The inference rules of Figure 3:
    {ul
    {- [pc($x,$y) ⊢ ad($x,$y)]}
    {- [ad($x,$y), ad($y,$z) ⊢ ad($x,$z)]}
    {- [ad($x,$y), contains($y,F) ⊢ contains($x,F)]}}

    The last rule is applied only to {e positive} full-text expressions
    (no negation): an ancestor's scope includes a descendant's, so
    monotone satisfaction propagates upward; with negation it does not.
    The paper's expressions are conjunctions of keywords, which are
    positive. *)

val closure : Pred.t list -> Pred.t list
(** [closure preds] conjoins everything derivable by the inference
    rules, e.g. Figure 4 for query Q1.  Idempotent; sorted output.
    Requires the structural predicates to be acyclic (true of any
    TPQ). *)

val closure_set : Pred.Set.t -> Pred.Set.t

val derivable : Pred.Set.t -> Pred.t -> bool
(** [derivable from p]: can [p] be obtained from [from] (without using
    [p] itself) by the inference rules? *)

val is_redundant : Pred.Set.t -> Pred.t -> bool
(** [is_redundant c p]: [p ∈ c] and [p] is derivable from [c \ {p}]. *)

val core : Pred.t list -> Pred.t list
(** The unique minimal predicate set equivalent to the input
    (Theorem 1): the closure with all redundant predicates removed.
    Sorted output. *)

val equivalent : Pred.t list -> Pred.t list -> bool
(** Same closure. *)

val subsumes : Pred.t list -> Pred.t list -> bool
(** [subsumes weaker stronger]: every predicate of [closure weaker]
    appears in [closure stronger] — i.e. the query with predicates
    [stronger] is contained in the one with [weaker], over the same
    variables. *)

val minimize : Query.t -> Query.t
(** The unique minimal query equivalent to the input (Theorem 1 /
    Flesca et al.): rebuilds the query from the core of its closure.
    Variable ids are preserved. *)
