(** Logical predicates of tree pattern queries (§2.1).

    A TPQ is logically the conjunction of structural predicates
    [pc($i,$j)] / [ad($i,$j)] with value-based predicates: tag
    constraints, attribute comparisons and [contains($i, FTExp)].
    Variables are integers, conventionally printed [$i]. *)

type relop = Eq | Neq | Lt | Le | Gt | Ge

type attr_value = S of string | F of float

type attr_pred = { attr : string; op : relop; value : attr_value }

type t =
  | Pc of int * int  (** [Pc (x, y)]: $y is a child of $x. *)
  | Ad of int * int  (** [Ad (x, y)]: $y is a descendant of $x (strict). *)
  | Tag_eq of int * string  (** [$x.tag = name]. *)
  | Attr of int * attr_pred  (** [$x.attr relOp value]. *)
  | Contains of int * Fulltext.Ftexp.t
      (** [contains($x, FTExp)]: some text in $x's scope satisfies the
          full-text expression. *)

val is_structural : t -> bool
(** [Pc] and [Ad] predicates. *)

val is_contains : t -> bool

val vars : t -> int list
(** The variables mentioned: one or two entries. *)

val rename : (int -> int) -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val eval_attr : attr_pred -> (string -> string option) -> bool
(** [eval_attr p lookup] evaluates the comparison against the attribute
    value returned by [lookup p.attr].  String values compare
    lexicographically; numeric values require the attribute to parse as
    a float. *)

val pp_relop : Format.formatter -> relop -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
