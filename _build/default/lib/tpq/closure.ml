module Ftexp = Fulltext.Ftexp

let closure_set preds =
  let current = ref preds in
  let changed = ref true in
  let add p =
    if not (Pred.Set.mem p !current) then begin
      current := Pred.Set.add p !current;
      changed := true
    end
  in
  while !changed do
    changed := false;
    let snapshot = !current in
    Pred.Set.iter
      (fun p ->
        match p with
        | Pred.Pc (x, y) -> add (Pred.Ad (x, y))
        | Pred.Ad (x, y) ->
          Pred.Set.iter
            (fun p' ->
              match p' with
              | Pred.Ad (y', z) when y' = y -> add (Pred.Ad (x, z))
              | Pred.Contains (y', f) when y' = y && Ftexp.is_positive f ->
                add (Pred.Contains (x, f))
              | _ -> ())
            snapshot
        | Pred.Tag_eq _ | Pred.Attr _ | Pred.Contains _ -> ())
      snapshot
  done;
  !current

let closure preds = Pred.Set.elements (closure_set (Pred.Set.of_list preds))

let derivable from p =
  let from = Pred.Set.remove p from in
  Pred.Set.mem p (closure_set from)

let is_redundant c p = Pred.Set.mem p c && derivable c p

let core preds =
  let c = closure_set (Pred.Set.of_list preds) in
  Pred.Set.elements (Pred.Set.filter (fun p -> not (is_redundant c p)) c)

let equivalent a b =
  Pred.Set.equal (closure_set (Pred.Set.of_list a)) (closure_set (Pred.Set.of_list b))

let subsumes weaker stronger =
  Pred.Set.subset
    (closure_set (Pred.Set.of_list weaker))
    (closure_set (Pred.Set.of_list stronger))

let minimize q =
  match Query.of_preds ~distinguished:(Query.distinguished q) (core (Query.to_preds q)) with
  | Ok q' -> q'
  | Error msg ->
    (* the core of a valid TPQ's own closure is always a TPQ *)
    invalid_arg ("Closure.minimize: " ^ msg)
