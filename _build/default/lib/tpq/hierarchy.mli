(** Element type hierarchies (§3.4).

    The paper's first "other relaxation" assumes a subtype relation on
    element types: if [article] is declared a subtype of [publication],
    the tag predicate [$1.tag = article] can be relaxed to
    [$1.tag = publication], and a query node constrained to
    [publication] matches elements of any of its subtypes.

    The hierarchy is a forest — each tag has at most one immediate
    supertype — which keeps the relaxation step (and its penalty)
    unique, mirroring how contains-promotion moves to {e the} parent. *)

type t

val empty : t

val add : t -> sub:string -> super:string -> (t, string) result
(** Declares [sub <: super].  Fails if [sub] already has a supertype or
    the edge would create a cycle. *)

val of_list : (string * string) list -> (t, string) result
(** [(sub, super)] pairs. *)

val of_list_exn : (string * string) list -> t

val is_empty : t -> bool

val supertype : t -> string -> string option
(** Immediate supertype. *)

val supertypes : t -> string -> string list
(** Transitive supertypes, nearest first. *)

val subtypes : t -> string -> string list
(** Transitive subtypes, not including the tag itself; unordered. *)

val matches : t -> query_tag:string -> element_tag:string -> bool
(** Does an element with [element_tag] satisfy a query node constrained
    to [query_tag]?  True when equal or [element_tag] is a (transitive)
    subtype. *)

val tags : t -> string list
(** Every tag mentioned. *)

val parse_file : string -> (t, string) result
(** One [sub < super] declaration per line; [#] comments and blank
    lines ignored. *)
