(** Query containment for tree pattern queries.

    [Q ⊆ Q'] holds when every answer of [Q] is an answer of [Q'] on
    every document (§2.1).  The general problem is coNP-hard for this
    fragment [Miklau & Suciu, PODS 2002]; we implement the standard
    homomorphism test, which is sound, and complete in the absence of
    interacting wildcard/branching patterns — in particular on the
    closure-based relaxations generated in this system, whose queries
    are wildcard-free. *)

val homomorphism : ?hierarchy:Hierarchy.t -> Query.t -> Query.t -> bool
(** [homomorphism q' q] — is there a mapping h from the variables of
    [q'] to those of [q] such that h maps the distinguished node of
    [q'] to that of [q], pc-edges map to pc-edges, ad-edges to ancestor
    paths, and every value-based predicate of a [q'] variable is
    implied by those on its image (tags up to the hierarchy)?  Its
    existence proves [q ⊆ q']. *)

val contained : ?hierarchy:Hierarchy.t -> Query.t -> Query.t -> bool
(** [contained q q'] = [homomorphism q' q]: sound test for [q ⊆ q']. *)

val equivalent_on :
  ?hierarchy:Hierarchy.t ->
  Xmldom.Doc.t -> Fulltext.Index.t -> Query.t -> Query.t -> bool
(** Answer sets coincide on one concrete document — used by tests as a
    ground-truth cross-check. *)
