(** Tree pattern queries with full-text predicates — the query model of
    FleXPath (SIGMOD 2004).

    {!Tpq.Query} is the pattern type, {!Tpq.Pred} its logical form,
    {!Tpq.Closure} the inference-rule closure and unique core (§3.2),
    {!Tpq.Xpath} the concrete syntax, {!Tpq.Semantics} the exact-match
    reference evaluator and {!Tpq.Containment} the containment test. *)

module Pred = Pred
module Query = Query
module Closure = Closure
module Xpath = Xpath
module Semantics = Semantics
module Containment = Containment
module Hierarchy = Hierarchy
