module Ftexp = Fulltext.Ftexp

type st = { src : string; len : int; mutable pos : int; mutable next_var : int }

type error = { offset : int; message : string }

let error_to_string { offset; message } = Printf.sprintf "at offset %d: %s" offset message

exception Err of error

let fail st msg = raise (Err { offset = st.pos; message = msg })
let fail_at offset msg = raise (Err { offset; message = msg })
let eof st = st.pos >= st.len
let peek st = if eof st then '\000' else st.src.[st.pos]

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= st.len && String.sub st.src st.pos n = prefix

let skip_ws st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    st.pos <- st.pos + 1
  done

let eat st prefix =
  skip_ws st;
  if looking_at st prefix then begin
    st.pos <- st.pos + String.length prefix;
    true
  end
  else false

let expect st prefix = if not (eat st prefix) then fail st (Printf.sprintf "expected %S" prefix)

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let parse_name st =
  skip_ws st;
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let fresh st =
  let v = st.next_var in
  st.next_var <- v + 1;
  v

(* Scan to the matching close parenthesis, respecting quotes, and parse
   the spanned text as a full-text expression. *)
let parse_ftexp_until_rparen st =
  let start = st.pos in
  let depth = ref 0 in
  let in_str = ref false in
  let continue_ = ref true in
  while !continue_ do
    if eof st then fail st "unterminated contains(...)";
    let c = peek st in
    if !in_str then begin
      if c = '"' then in_str := false;
      st.pos <- st.pos + 1
    end
    else if c = '"' then begin
      in_str := true;
      st.pos <- st.pos + 1
    end
    else if c = '(' then begin
      incr depth;
      st.pos <- st.pos + 1
    end
    else if c = ')' then
      if !depth = 0 then continue_ := false
      else begin
        decr depth;
        st.pos <- st.pos + 1
      end
    else st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  st.pos <- st.pos + 1;
  (* consume ')' *)
  match Ftexp.of_string text with
  | Ok e -> e
  | Error { message; position } ->
    fail_at (start + position) ("bad full-text expression: " ^ message)

let parse_relop st =
  skip_ws st;
  if eat st "!=" then Pred.Neq
  else if eat st "<=" then Pred.Le
  else if eat st ">=" then Pred.Ge
  else if eat st "=" then Pred.Eq
  else if eat st "<" then Pred.Lt
  else if eat st ">" then Pred.Gt
  else fail st "expected a comparison operator"

let parse_literal st =
  skip_ws st;
  if peek st = '"' || peek st = '\'' then begin
    let quote = peek st in
    st.pos <- st.pos + 1;
    let start = st.pos in
    while (not (eof st)) && peek st <> quote do
      st.pos <- st.pos + 1
    done;
    if eof st then fail st "unterminated string literal";
    let s = String.sub st.src start (st.pos - start) in
    st.pos <- st.pos + 1;
    Pred.S s
  end
  else begin
    let start = st.pos in
    while
      (not (eof st))
      && (match peek st with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = start then fail st "expected a literal";
    match float_of_string_opt (String.sub st.src start (st.pos - start)) with
    | Some f -> Pred.F f
    | None -> fail st "bad numeric literal"
  end

(* Parse results are accumulated imperatively into these growing lists
   of nodes and edges; each step allocates a fresh variable. *)
type acc = {
  mutable nodes : (int * Query.node) list;
  mutable edges : (int * int * Query.axis) list;
}

let add_node acc v ?tag ?(attrs = []) ?(contains = []) () =
  acc.nodes <- (v, Query.node_spec ?tag ~attrs ~contains ()) :: acc.nodes

let amend_node acc v f =
  acc.nodes <-
    List.map (fun (v', n) -> if v' = v then (v', f n) else (v', n)) acc.nodes

(* step: name or '*', then optional predicate list.  Returns the step's
   variable. *)
let rec parse_step st acc parent_var axis =
  skip_ws st;
  let tag = if eat st "*" then None else Some (parse_name st) in
  let v = fresh st in
  add_node acc v ?tag ();
  (match (parent_var, axis) with
  | Some p, Some a -> acc.edges <- (p, v, a) :: acc.edges
  | None, None -> ()
  | _ -> assert false);
  skip_ws st;
  if eat st "[" then begin
    parse_pred st acc v;
    let rec more () =
      skip_ws st;
      if eat st "and" then begin
        parse_pred st acc v;
        more ()
      end
    in
    more ();
    expect st "]"
  end;
  v

(* A predicate in context variable [v]. *)
and parse_pred st acc v =
  skip_ws st;
  if eat st "@" then begin
    let attr = parse_name st in
    let op = parse_relop st in
    let value = parse_literal st in
    amend_node acc v (fun n -> { n with attrs = n.attrs @ [ { attr; op; value } ] })
  end
  else if looking_at st "contains" then begin
    expect st "contains";
    expect st "(";
    skip_ws st;
    let target =
      if looking_at st "./" || looking_at st ".//" then parse_relpath st acc v
      else begin
        expect st ".";
        v
      end
    in
    expect st ",";
    let e = parse_ftexp_until_rparen st in
    amend_node acc target (fun n -> { n with contains = n.contains @ [ e ] })
  end
  else if looking_at st "." then begin
    (* Either a relative path, possibly ending in .contains(...), or the
       paper-style bare .contains(...). *)
    if looking_at st ".contains" then begin
      expect st ".contains";
      expect st "(";
      let e = parse_ftexp_until_rparen st in
      amend_node acc v (fun n -> { n with contains = n.contains @ [ e ] })
    end
    else begin
      let target = parse_relpath st acc v in
      skip_ws st;
      if looking_at st ".contains" then begin
        expect st ".contains";
        expect st "(";
        let e = parse_ftexp_until_rparen st in
        amend_node acc target (fun n -> { n with contains = n.contains @ [ e ] })
      end
    end
  end
  else fail st "expected a predicate"

(* relpath: '.' then (('/' | '//') step)* — returns the final variable
   (which is [v] itself for a bare '.'). *)
and parse_relpath st acc v =
  expect st ".";
  let rec steps current =
    if looking_at st ".contains" then current
    else if eat st "//" then steps (parse_step st acc (Some current) (Some Query.Descendant))
    else if eat st "/" then steps (parse_step st acc (Some current) (Some Query.Child))
    else current
  in
  steps v

let parse s =
  let st = { src = s; len = String.length s; pos = 0; next_var = 1 } in
  let acc = { nodes = []; edges = [] } in
  try
    skip_ws st;
    let first_axis () =
      if eat st "//" then () else if eat st "/" then () else fail st "query must start with / or //"
    in
    first_axis ();
    let root = parse_step st acc None None in
    let rec main_steps last =
      skip_ws st;
      if eat st "//" then main_steps (parse_step st acc (Some last) (Some Query.Descendant))
      else if eat st "/" then main_steps (parse_step st acc (Some last) (Some Query.Child))
      else last
    in
    let dist = main_steps root in
    skip_ws st;
    if not (eof st) then fail st "trailing characters";
    Result.map_error
      (fun message -> { offset = 0; message })
      (Query.make ~root ~nodes:acc.nodes ~edges:acc.edges ~distinguished:dist)
  with Err e -> Error e

let parse_exn s =
  match parse s with
  | Ok q -> q
  | Error e -> invalid_arg ("Xpath.parse_exn: " ^ error_to_string e)

let to_string q =
  let b = Buffer.create 128 in
  (* The main path must run from the root to the distinguished node, so
     re-parsing the output recovers the same answer variable. *)
  let spine =
    let rec up v acc =
      match Query.parent q v with None -> v :: acc | Some (p, _) -> up p (v :: acc)
    in
    up (Query.distinguished q) []
  in
  let on_spine v = List.mem v spine in
  let axis_str = function Query.Child -> "/" | Query.Descendant -> "//" in
  let add_predicates v emit_kid =
    let n = Query.node q v in
    let kids = List.filter (fun (c, _) -> not (on_spine c)) (Query.children q v) in
    let preds_present = kids <> [] || n.attrs <> [] || n.contains <> [] in
    if preds_present then begin
      Buffer.add_char b '[';
      let first = ref true in
      let sep () = if !first then first := false else Buffer.add_string b " and " in
      List.iter
        (fun (c, a) ->
          sep ();
          Buffer.add_char b '.';
          emit_kid c a)
        kids;
      List.iter
        (fun e ->
          sep ();
          Buffer.add_string b ".contains(";
          Buffer.add_string b (Ftexp.to_string e);
          Buffer.add_char b ')')
        n.contains;
      List.iter
        (fun (p : Pred.attr_pred) ->
          sep ();
          Buffer.add_char b '@';
          Buffer.add_string b p.attr;
          Buffer.add_string b (Format.asprintf " %a " Pred.pp_relop p.op);
          Buffer.add_string b
            (match p.value with S s -> Printf.sprintf "%S" s | F f -> Printf.sprintf "%g" f))
        n.attrs;
      Buffer.add_char b ']'
    end
  in
  let rec emit_pred_step v axis =
    Buffer.add_string b (axis_str axis);
    let n = Query.node q v in
    Buffer.add_string b (match n.tag with Some t -> t | None -> "*");
    add_predicates v emit_pred_step
  in
  let rec emit_spine = function
    | [] -> ()
    | v :: rest ->
      let axis =
        match Query.parent q v with None -> Query.Descendant | Some (_, a) -> a
      in
      Buffer.add_string b (axis_str axis);
      let n = Query.node q v in
      Buffer.add_string b (match n.tag with Some t -> t | None -> "*");
      add_predicates v emit_pred_step;
      emit_spine rest
  in
  emit_spine spine;
  Buffer.contents b
