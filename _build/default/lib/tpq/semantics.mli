(** Reference (exact-match) semantics of tree pattern queries (§2.1).

    A match is a function from query variables to document elements
    preserving all structural relationships and satisfying all
    value-based predicates; the answer set is the image of the
    distinguished variable.  This evaluator is deliberately simple — a
    backtracking tree search — and serves as the correctness oracle for
    the structural-join engine and for the relaxation soundness
    properties.

    When a type [hierarchy] is supplied (§3.4), a tag constraint matches
    elements of the tag or any of its transitive subtypes. *)

type binding = (int * Xmldom.Doc.elem) list
(** One match: sorted association list from variable to element. *)

val answers :
  ?hierarchy:Hierarchy.t ->
  Xmldom.Doc.t -> Fulltext.Index.t -> Query.t -> Xmldom.Doc.elem list
(** Distinct bindings of the distinguished variable, sorted by
    pre-order id. *)

val matches :
  ?hierarchy:Hierarchy.t ->
  ?limit:int -> Xmldom.Doc.t -> Fulltext.Index.t -> Query.t -> binding list
(** All full matches (up to [limit], default unbounded). *)

val count_matches :
  ?hierarchy:Hierarchy.t -> Xmldom.Doc.t -> Fulltext.Index.t -> Query.t -> int

val holds_at :
  ?hierarchy:Hierarchy.t ->
  Xmldom.Doc.t -> Fulltext.Index.t -> Query.t -> Xmldom.Doc.elem -> bool
(** Is there a match binding the distinguished variable to the given
    element? *)

val satisfies_node :
  ?hierarchy:Hierarchy.t ->
  Xmldom.Doc.t -> Fulltext.Index.t -> Query.node -> Xmldom.Doc.elem -> bool
(** Value-based predicates of a single query node (tag, attributes,
    contains) at an element. *)

val candidates :
  ?hierarchy:Hierarchy.t -> Xmldom.Doc.t -> Query.node -> Xmldom.Doc.elem array
(** Elements that can match a query node by tag alone, sorted by
    pre-order id: the tag's elements (merged with its subtypes'
    elements under a hierarchy), or every element for a wildcard. *)
