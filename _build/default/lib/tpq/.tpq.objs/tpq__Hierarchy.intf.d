lib/tpq/hierarchy.mli:
