lib/tpq/xpath.mli: Query
