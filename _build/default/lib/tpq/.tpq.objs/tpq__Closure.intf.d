lib/tpq/closure.mli: Pred Query
