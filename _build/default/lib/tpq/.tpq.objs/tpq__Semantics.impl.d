lib/tpq/semantics.ml: Array Fulltext Fun Hierarchy Int List Pred Query Set Xmldom
