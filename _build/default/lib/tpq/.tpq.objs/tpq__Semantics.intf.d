lib/tpq/semantics.mli: Fulltext Hierarchy Query Xmldom
