lib/tpq/tpq.ml: Closure Containment Hierarchy Pred Query Semantics Xpath
