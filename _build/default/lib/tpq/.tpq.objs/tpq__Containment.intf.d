lib/tpq/containment.mli: Fulltext Hierarchy Query Xmldom
