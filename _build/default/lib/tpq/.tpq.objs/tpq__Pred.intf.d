lib/tpq/pred.mli: Format Fulltext Set
