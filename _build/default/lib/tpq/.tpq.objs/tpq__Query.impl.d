lib/tpq/query.ml: Buffer Format Fulltext Hashtbl Int List Map Pred Printf String
