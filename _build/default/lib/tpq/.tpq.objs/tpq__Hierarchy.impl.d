lib/tpq/hierarchy.ml: List Map Printf Result String
