lib/tpq/query.mli: Format Fulltext Pred
