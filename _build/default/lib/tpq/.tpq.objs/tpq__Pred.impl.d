lib/tpq/pred.ml: Float Format Fulltext Set Stdlib String
