lib/tpq/xpath.ml: Buffer Format Fulltext List Pred Printf Query Result String
