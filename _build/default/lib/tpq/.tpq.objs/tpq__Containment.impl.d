lib/tpq/containment.ml: Closure Fulltext Hierarchy List Pred Query Semantics
