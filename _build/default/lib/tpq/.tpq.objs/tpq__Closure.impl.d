lib/tpq/closure.ml: Fulltext Pred Query
