type relop = Eq | Neq | Lt | Le | Gt | Ge

type attr_value = S of string | F of float

type attr_pred = { attr : string; op : relop; value : attr_value }

type t =
  | Pc of int * int
  | Ad of int * int
  | Tag_eq of int * string
  | Attr of int * attr_pred
  | Contains of int * Fulltext.Ftexp.t

let is_structural = function Pc _ | Ad _ -> true | Tag_eq _ | Attr _ | Contains _ -> false
let is_contains = function Contains _ -> true | Pc _ | Ad _ | Tag_eq _ | Attr _ -> false

let vars = function
  | Pc (x, y) | Ad (x, y) -> [ x; y ]
  | Tag_eq (x, _) | Attr (x, _) | Contains (x, _) -> [ x ]

let rename f = function
  | Pc (x, y) -> Pc (f x, f y)
  | Ad (x, y) -> Ad (f x, f y)
  | Tag_eq (x, t) -> Tag_eq (f x, t)
  | Attr (x, p) -> Attr (f x, p)
  | Contains (x, e) -> Contains (f x, e)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let cmp_relop op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let eval_attr p lookup =
  match lookup p.attr with
  | None -> false
  | Some raw -> (
    match p.value with
    | S s -> cmp_relop p.op (String.compare raw s)
    | F f -> (
      match float_of_string_opt (String.trim raw) with
      | None -> false
      | Some v -> cmp_relop p.op (Float.compare v f)))

let pp_relop fmt op =
  let s = match op with Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" in
  Format.pp_print_string fmt s

let pp fmt = function
  | Pc (x, y) -> Format.fprintf fmt "pc($%d,$%d)" x y
  | Ad (x, y) -> Format.fprintf fmt "ad($%d,$%d)" x y
  | Tag_eq (x, t) -> Format.fprintf fmt "$%d.tag = %s" x t
  | Attr (x, { attr; op; value }) ->
    let pp_value fmt = function
      | S s -> Format.fprintf fmt "%S" s
      | F f -> Format.fprintf fmt "%g" f
    in
    Format.fprintf fmt "$%d.%s %a %a" x attr pp_relop op pp_value value
  | Contains (x, e) -> Format.fprintf fmt "contains($%d, %a)" x Fulltext.Ftexp.pp e

let to_string p = Format.asprintf "%a" pp p

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
