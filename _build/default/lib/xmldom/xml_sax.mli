(** Streaming (SAX-style) XML parsing.

    The paper's implementation sat on top of the expat SAX parser; this
    module provides the same push-event interface over the same XML
    subset as {!Xml_parser}, without materializing a tree.  Useful for
    single-pass statistics, filtering, or feeding an indexer directly.

    Events arrive in document order; element nesting is guaranteed
    well-formed (mismatched tags raise the usual parse error).
    Whitespace-only text between elements is dropped, as in
    {!Xml_parser}. *)

type event =
  | Start_element of string * Xml.attr list
  | End_element of string
  | Text of string

val fold : string -> init:'a -> f:('a -> event -> 'a) -> ('a, Xml_parser.error) result
(** [fold s ~init ~f] runs [f] over every event of the document in
    [s]. *)

val iter : string -> f:(event -> unit) -> (unit, Xml_parser.error) result

val fold_file : string -> init:'a -> f:('a -> event -> 'a) -> ('a, Xml_parser.error) result

val tree_of_events : event list -> (Xml.t, string) result
(** Reassemble a tree from an event list — mostly for testing that the
    streaming and DOM views agree. *)

val events : string -> (event list, Xml_parser.error) result
(** All events, materialized. *)
