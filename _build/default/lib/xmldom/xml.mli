(** In-memory XML trees.

    This is the exchange format between the parser, the programmatic
    builders and {!Doc} (the arena representation used by the query
    engines).  Only elements, attributes and character data are modelled;
    comments and processing instructions are discarded at parse time. *)

type attr = string * string
(** An attribute: [(name, value)].  Values are stored unescaped. *)

type t =
  | Element of string * attr list * t list
  | Text of string  (** Character data, unescaped. *)

val element : ?attrs:attr list -> string -> t list -> t
(** [element ~attrs name children] builds an element node. *)

val text : string -> t
(** [text s] builds a character-data node. *)

val tag : t -> string option
(** [tag t] is the element name of [t], or [None] for text nodes. *)

val children : t -> t list
(** [children t] is the child list of an element, [[]] for text nodes. *)

val attribute : t -> string -> string option
(** [attribute t name] looks up attribute [name] on an element. *)

val direct_text : t -> string
(** [direct_text t] concatenates the character data appearing directly
    under [t] (not under its descendants). *)

val deep_text : t -> string
(** [deep_text t] concatenates all character data in the subtree rooted
    at [t], in document order. *)

val count_elements : t -> int
(** [count_elements t] is the number of element nodes in the subtree. *)

val escape : string -> string
(** [escape s] replaces ampersand, angle brackets and both quote
    characters with the predefined XML entities. *)

val to_string : ?decl:bool -> t -> string
(** [to_string t] serializes [t] to a compact XML string.  [decl]
    (default [false]) prepends an XML declaration. *)

val to_buffer : Buffer.t -> t -> unit
(** [to_buffer b t] appends the serialization of [t] to [b]. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] pretty-prints [t] with two-space indentation.  Mixed
    content (elements with both text and element children) is printed
    inline to preserve character data. *)

val equal : t -> t -> bool
(** Structural equality, ignoring attribute order. *)
