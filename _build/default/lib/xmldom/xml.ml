type attr = string * string

type t =
  | Element of string * attr list * t list
  | Text of string

let element ?(attrs = []) name children = Element (name, attrs, children)
let text s = Text s

let tag = function
  | Element (name, _, _) -> Some name
  | Text _ -> None

let children = function
  | Element (_, _, kids) -> kids
  | Text _ -> []

let attribute t name =
  match t with
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let direct_text t =
  match t with
  | Text s -> s
  | Element (_, _, kids) ->
    let b = Buffer.create 16 in
    let add = function
      | Text s -> Buffer.add_string b s
      | Element _ -> ()
    in
    List.iter add kids;
    Buffer.contents b

let deep_text t =
  let b = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string b s
    | Element (_, _, kids) -> List.iter go kids
  in
  go t;
  Buffer.contents b

let count_elements t =
  let rec go acc = function
    | Text _ -> acc
    | Element (_, _, kids) -> List.fold_left go (acc + 1) kids
  in
  go 0 t

let escape s =
  let needs_escape = function
    | '&' | '<' | '>' | '"' | '\'' -> true
    | _ -> false
  in
  if not (String.exists needs_escape s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string b "&amp;"
        | '<' -> Buffer.add_string b "&lt;"
        | '>' -> Buffer.add_string b "&gt;"
        | '"' -> Buffer.add_string b "&quot;"
        | '\'' -> Buffer.add_string b "&apos;"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let add_attrs b attrs =
  let add (name, value) =
    Buffer.add_char b ' ';
    Buffer.add_string b name;
    Buffer.add_string b "=\"";
    Buffer.add_string b (escape value);
    Buffer.add_char b '"'
  in
  List.iter add attrs

let rec to_buffer b t =
  match t with
  | Text s -> Buffer.add_string b (escape s)
  | Element (name, attrs, kids) ->
    Buffer.add_char b '<';
    Buffer.add_string b name;
    add_attrs b attrs;
    if kids = [] then Buffer.add_string b "/>"
    else begin
      Buffer.add_char b '>';
      List.iter (to_buffer b) kids;
      Buffer.add_string b "</";
      Buffer.add_string b name;
      Buffer.add_char b '>'
    end

let to_string ?(decl = false) t =
  let b = Buffer.create 1024 in
  if decl then Buffer.add_string b "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  to_buffer b t;
  Buffer.contents b

let has_element_child kids = List.exists (function Element _ -> true | Text _ -> false) kids
let has_text_child kids = List.exists (function Text _ -> true | Element _ -> false) kids

let rec pp fmt t =
  match t with
  | Text s -> Format.pp_print_string fmt (escape s)
  | Element (name, attrs, kids) ->
    let attrs_str =
      let b = Buffer.create 16 in
      add_attrs b attrs;
      Buffer.contents b
    in
    if kids = [] then Format.fprintf fmt "<%s%s/>" name attrs_str
    else if has_text_child kids || not (has_element_child kids) then begin
      (* Mixed or text-only content: inline to keep character data intact. *)
      Format.fprintf fmt "<%s%s>" name attrs_str;
      List.iter (pp fmt) kids;
      Format.fprintf fmt "</%s>" name
    end
    else begin
      Format.fprintf fmt "@[<v 2><%s%s>" name attrs_str;
      List.iter (fun k -> Format.fprintf fmt "@,%a" pp k) kids;
      Format.fprintf fmt "@]@,</%s>" name
    end

let rec equal a b =
  match (a, b) with
  | Text s, Text s' -> String.equal s s'
  | Element (n, at, k), Element (n', at', k') ->
    String.equal n n'
    && List.length at = List.length at'
    && List.for_all (fun (name, v) -> List.assoc_opt name at' = Some v) at
    && List.length k = List.length k'
    && List.for_all2 equal k k'
  | Text _, Element _ | Element _, Text _ -> false
