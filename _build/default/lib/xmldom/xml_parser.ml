type error = { position : int; line : int; column : int; message : string }

let pp_error fmt e =
  (* line 0 marks I/O failures, which have no source position *)
  if e.line = 0 then Format.pp_print_string fmt e.message
  else Format.fprintf fmt "XML parse error at line %d, column %d: %s" e.line e.column e.message

exception Parse_error of error

type state = { src : string; len : int; mutable pos : int }

let line_col src pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (pos - 1) (String.length src - 1) do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, column = line_col st.src st.pos in
  raise (Parse_error { position = st.pos; line; column; message })

let eof st = st.pos >= st.len
let peek st = if eof st then '\000' else st.src.[st.pos]
let peek2 st = if st.pos + 1 >= st.len then '\000' else st.src.[st.pos + 1]
let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= st.len && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Decode an entity reference starting just after '&'. *)
let parse_entity st b =
  let start = st.pos in
  let rec find_semi () =
    if eof st then fail st "unterminated entity reference"
    else if peek st = ';' then ()
    else begin
      advance st;
      find_semi ()
    end
  in
  find_semi ();
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  let add_codepoint cp =
    (* UTF-8 encode. *)
    if cp < 0 then fail st "negative character reference"
    else if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp <= 0x10FFFF then begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else fail st "character reference out of range"
  in
  match name with
  | "amp" -> Buffer.add_char b '&'
  | "lt" -> Buffer.add_char b '<'
  | "gt" -> Buffer.add_char b '>'
  | "quot" -> Buffer.add_char b '"'
  | "apos" -> Buffer.add_char b '\''
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let cp =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with Failure _ -> fail st (Printf.sprintf "bad character reference &%s;" name)
      in
      add_codepoint cp
    end
    else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        advance st;
        parse_entity st b;
        go ()
      end
      else if c = '<' then fail st "'<' in attribute value"
      else begin
        Buffer.add_char b c;
        advance st;
        go ()
      end
  in
  go ();
  Buffer.contents b

let parse_attrs st =
  let rec go acc =
    skip_ws st;
    let c = peek st in
    if c = '>' || c = '/' || c = '?' then List.rev acc
    else begin
      let name = parse_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = parse_attr_value st in
      go ((name, value) :: acc)
    end
  in
  go []

let skip_until st stop =
  let n = String.length stop in
  let rec go () =
    if st.pos + n > st.len then fail st (Printf.sprintf "expected %S before end of input" stop)
    else if looking_at st stop then st.pos <- st.pos + n
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_comment st = skip_until st "-->"
let skip_pi st = skip_until st "?>"

(* Skip a DOCTYPE declaration, tolerating an internal subset. *)
let skip_doctype st =
  let rec go depth =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        advance st;
        go (depth + 1)
      | ']' ->
        advance st;
        go (depth - 1)
      | '>' when depth = 0 -> advance st
      | _ ->
        advance st;
        go depth
  in
  go 0

let parse_cdata st b =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec find () =
    if st.pos + 3 > st.len then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then ()
    else begin
      advance st;
      find ()
    end
  in
  find ();
  Buffer.add_substring b st.src start (st.pos - start);
  st.pos <- st.pos + 3

let all_ws s = String.for_all is_ws s

type event =
  | Start_element of string * Xml.attr list
  | End_element of string
  | Text of string

(* The streaming core: emit events for one element and its content.
   [open_tags] is the stack of currently open element names. *)
let scan_document st emit =
  let open_tags = ref [] in
  let start_element () =
    expect st "<";
    let name = parse_name st in
    let attrs = parse_attrs st in
    skip_ws st;
    if looking_at st "/>" then begin
      st.pos <- st.pos + 2;
      emit (Start_element (name, attrs));
      emit (End_element name)
    end
    else begin
      expect st ">";
      emit (Start_element (name, attrs));
      open_tags := name :: !open_tags
    end
  in
  start_element ();
  while !open_tags <> [] do
    let name = match !open_tags with n :: _ -> n | [] -> assert false in
    if eof st then fail st (Printf.sprintf "unterminated element <%s>" name)
    else if looking_at st "</" then begin
      st.pos <- st.pos + 2;
      let close = parse_name st in
      if close <> name then
        fail st (Printf.sprintf "mismatched closing tag: expected </%s>, got </%s>" name close);
      skip_ws st;
      expect st ">";
      emit (End_element name);
      open_tags := List.tl !open_tags
    end
    else if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      skip_comment st
    end
    else if looking_at st "<![CDATA[" then begin
      let b = Buffer.create 32 in
      parse_cdata st b;
      emit (Text (Buffer.contents b))
    end
    else if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      skip_pi st
    end
    else if peek st = '<' then start_element ()
    else begin
      let b = Buffer.create 32 in
      while (not (eof st)) && peek st <> '<' do
        if peek st = '&' then begin
          advance st;
          parse_entity st b
        end
        else begin
          Buffer.add_char b (peek st);
          advance st
        end
      done;
      let s = Buffer.contents b in
      (* Whitespace-only text between elements is insignificant for the
         document collections we target; drop it. *)
      if not (all_ws s) then emit (Text s)
    end
  done

let skip_prolog st =
  let rec go () =
    skip_ws st;
    if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      skip_pi st;
      go ()
    end
    else if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      skip_comment st;
      go ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      st.pos <- st.pos + 9;
      skip_doctype st;
      go ()
    end
  in
  go ()

let skip_epilog st =
  let rec go () =
    skip_ws st;
    if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      skip_comment st;
      go ()
    end
    else if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      skip_pi st;
      go ()
    end
    else if not (eof st) then fail st "trailing content after document element"
  in
  go ()

let scan_exn s ~init ~f =
  let st = { src = s; len = String.length s; pos = 0 } in
  skip_prolog st;
  if peek st <> '<' || peek2 st = '/' then fail st "expected document element";
  let acc = ref init in
  scan_document st (fun ev -> acc := f !acc ev);
  skip_epilog st;
  !acc

let scan s ~init ~f = try Ok (scan_exn s ~init ~f) with Parse_error e -> Error e

(* DOM construction on top of the event stream: a stack of open
   elements accumulating children in reverse. *)
type frame = { name : string; attrs : Xml.attr list; mutable rev_kids : Xml.t list }

let parse_exn s =
  let stack = ref [] in
  let result = ref None in
  let push_kid kid =
    match !stack with
    | frame :: _ -> frame.rev_kids <- kid :: frame.rev_kids
    | [] -> result := Some kid
  in
  let on_event () ev =
    match ev with
    | Start_element (name, attrs) -> stack := { name; attrs; rev_kids = [] } :: !stack
    | End_element _ -> (
      match !stack with
      | frame :: rest ->
        stack := rest;
        push_kid (Xml.Element (frame.name, frame.attrs, List.rev frame.rev_kids))
      | [] -> assert false)
    | Text s -> push_kid (Xml.Text s)
  in
  scan_exn s ~init:() ~f:on_event;
  match !result with
  | Some tree -> tree
  | None -> assert false (* scan_document always emits a balanced root *)

let parse s = try Ok (parse_exn s) with Parse_error e -> Error e

let parse_file path =
  match open_in_bin path with
  | exception Sys_error message -> Error { position = 0; line = 0; column = 0; message }
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse s
