type event = Xml_parser.event =
  | Start_element of string * Xml.attr list
  | End_element of string
  | Text of string

let fold s ~init ~f = Xml_parser.scan s ~init ~f

let iter s ~f = Xml_parser.scan s ~init:() ~f:(fun () ev -> f ev)

let fold_file path ~init ~f =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  fold s ~init ~f

let events s = Result.map List.rev (fold s ~init:[] ~f:(fun acc ev -> ev :: acc))

let tree_of_events evs =
  let rec go stack evs =
    match (evs, stack) with
    | [], [ (`Done tree) ] -> Ok tree
    | [], _ -> Error "unbalanced events"
    | Start_element (name, attrs) :: rest, _ -> go (`Open (name, attrs, []) :: stack) rest
    | End_element name :: rest, `Open (name', attrs, rev_kids) :: stack' ->
      if name <> name' then Error (Printf.sprintf "mismatched end: %s vs %s" name name')
      else begin
        let tree = Xml.Element (name', attrs, List.rev rev_kids) in
        match stack' with
        | `Open (n, a, kids) :: up -> go (`Open (n, a, tree :: kids) :: up) rest
        | [] -> go [ `Done tree ] rest
        | `Done _ :: _ -> Error "content after document element"
      end
    | End_element _ :: _, _ -> Error "end without matching start"
    | Text s :: rest, `Open (n, a, kids) :: up -> go (`Open (n, a, Xml.Text s :: kids) :: up) rest
    | Text _ :: _, _ -> Error "text outside the document element"
  in
  go [] evs
