lib/xmldom/xml.mli: Buffer Format
