lib/xmldom/xml_sax.ml: List Printf Result Xml Xml_parser
