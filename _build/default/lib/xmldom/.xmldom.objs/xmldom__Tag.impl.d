lib/xmldom/tag.ml: Array Hashtbl
