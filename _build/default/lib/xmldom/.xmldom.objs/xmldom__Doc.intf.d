lib/xmldom/doc.mli: Tag Xml Xml_parser
