lib/xmldom/xml_parser.mli: Format Xml
