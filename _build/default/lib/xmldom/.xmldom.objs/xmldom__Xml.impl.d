lib/xmldom/xml.ml: Buffer Format List String
