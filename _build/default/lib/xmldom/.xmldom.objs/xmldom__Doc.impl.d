lib/xmldom/doc.ml: Array Buffer List Printf Result String Tag Xml Xml_parser
