lib/xmldom/tag.mli:
