lib/xmldom/xml_sax.mli: Xml Xml_parser
