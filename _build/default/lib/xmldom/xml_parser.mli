(** A small, dependency-free XML parser.

    Supports the subset of XML needed for document collections: elements,
    attributes, character data, CDATA sections, comments, processing
    instructions, the XML declaration, a DOCTYPE declaration (skipped,
    internal subsets included), the five predefined entities and numeric
    character references.  Namespaces are not interpreted (prefixed names
    are kept verbatim).  DTD-defined entities are not expanded. *)

type error = { position : int; line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Parse_error of error

type event =
  | Start_element of string * Xml.attr list
  | End_element of string
  | Text of string
      (** The streaming core's events; {!Xml_sax} wraps them in a
          user-facing API, and {!parse} builds trees from them. *)

val scan : string -> init:'a -> f:('a -> event -> 'a) -> ('a, error) result
(** Fold over the document's events without building a tree. *)

val parse : string -> (Xml.t, error) result
(** [parse s] parses a complete XML document from [s].  Whitespace-only
    text nodes are dropped (element-content whitespace); all other
    character data is kept verbatim. *)

val parse_exn : string -> Xml.t
(** Like {!parse} but raises {!Parse_error}. *)

val parse_file : string -> (Xml.t, error) result
(** [parse_file path] reads and parses the file at [path]. *)
