(** Thesaurus-based keyword expansion (§3.4).

    The paper's third "other relaxation" replaces keywords with more
    general ones via a thesaurus, and notes such relaxations "can
    already be performed by a separate IR engine before returning its
    results".  This module is that pre-processing step: it rewrites a
    full-text expression so every keyword also matches its declared
    synonyms.  It composes with, and is orthogonal to, the structural
    relaxations. *)

type t

val empty : t

val add_ring : t -> string list -> t
(** [add_ring t ws] declares the words of [ws] mutually synonymous
    (lowercased).  Rings merge when they share a word. *)

val of_list : string list list -> t

val synonyms : t -> string -> string list
(** Synonyms of a word, excluding the word itself; sorted. *)

val is_empty : t -> bool

val expand : t -> Ftexp.t -> Ftexp.t
(** Rewrites every positively-occurring [Term w] with synonyms into the
    disjunction of [w] and its synonyms.  Negated subtrees, phrases and
    windows are left unchanged: expansion must only broaden matches,
    and widening a keyword under [Not] would narrow them. *)

val parse_file : string -> (t, string) result
(** One comma-separated synonym ring per line; [#] comments and blank
    lines ignored. *)
