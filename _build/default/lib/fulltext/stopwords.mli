(** A small English stopword list.

    Stopwords are skipped during indexing and query analysis so that
    scores are not dominated by function words. *)

val is_stopword : string -> bool
(** [is_stopword w] — [w] must be lowercase. *)

val all : string list
