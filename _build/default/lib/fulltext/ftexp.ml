type t =
  | Term of string
  | And of t * t
  | Or of t * t
  | Not of t
  | Phrase of string list
  | Window of int * string list

let term w = Term w
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let not_ a = Not a
let phrase ws = Phrase ws
let window n ws = Window (n, ws)

let keywords e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add w =
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out := w :: !out
    end
  in
  let rec go = function
    | Term w -> add w
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a -> go a
    | Phrase ws | Window (_, ws) -> List.iter add ws
  in
  go e;
  List.rev !out

let positive_keywords e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add w =
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out := w :: !out
    end
  in
  let rec go pos = function
    | Term w -> if pos then add w
    | And (a, b) | Or (a, b) ->
      go pos a;
      go pos b
    | Not a -> go (not pos) a
    | Phrase ws | Window (_, ws) -> if pos then List.iter add ws
  in
  go true e;
  List.rev !out

let rec is_positive = function
  | Term _ | Phrase _ | Window _ -> true
  | And (a, b) | Or (a, b) -> is_positive a && is_positive b
  | Not _ -> false

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec pp fmt e =
  match e with
  | And (a, b) -> Format.fprintf fmt "%a and %a" pp_and_operand a pp_and_operand b
  | Or (a, b) -> Format.fprintf fmt "%a or %a" pp a pp b
  | e -> pp_atom fmt e

and pp_and_operand fmt e =
  match e with
  | Or _ -> Format.fprintf fmt "(%a)" pp e
  | e -> pp fmt e

and pp_atom fmt = function
  | Term w -> Format.fprintf fmt "%S" w
  | Phrase ws -> Format.fprintf fmt "%S" (String.concat " " ws)
  | Window (n, ws) ->
    Format.fprintf fmt "window(%d%t)" n (fun fmt ->
        List.iter (fun w -> Format.fprintf fmt ", %S" w) ws)
  | Not a -> Format.fprintf fmt "not %a" pp_atom a
  | (And _ | Or _) as e -> Format.fprintf fmt "(%a)" pp e

let to_string e = Format.asprintf "%a" pp e

type parse_error = { position : int; message : string }

(* Recursive-descent parser over a token stream. *)
type tok =
  | Tword of string  (* bare word *)
  | Tquoted of string  (* quoted string, possibly multi-word *)
  | Tand
  | Tor
  | Tnot
  | Twindow
  | Tlparen
  | Trparen
  | Tcomma
  | Tint of int

exception Err of parse_error

let lex s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let fail pos message = raise (Err { position = pos; message }) in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin
      out := (Tlparen, !i) :: !out;
      incr i
    end
    else if c = ')' then begin
      out := (Trparen, !i) :: !out;
      incr i
    end
    else if c = ',' then begin
      out := (Tcomma, !i) :: !out;
      incr i
    end
    else if c = '"' then begin
      let start = !i in
      incr i;
      let b = Buffer.create 16 in
      while !i < n && s.[!i] <> '"' do
        Buffer.add_char b s.[!i];
        incr i
      done;
      if !i >= n then fail start "unterminated string";
      incr i;
      out := (Tquoted (Buffer.contents b), start) :: !out
    end
    else begin
      let start = !i in
      let is_wordc c =
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
        | c -> Char.code c >= 128
      in
      if not (is_wordc c) then fail start (Printf.sprintf "unexpected character %C" c);
      while !i < n && is_wordc s.[!i] do
        incr i
      done;
      let w = String.sub s start (!i - start) in
      let tok =
        match String.lowercase_ascii w with
        | "and" -> Tand
        | "or" -> Tor
        | "not" -> Tnot
        | "window" -> Twindow
        | w' -> ( match int_of_string_opt w' with Some k -> Tint k | None -> Tword w)
      in
      out := (tok, start) :: !out
    end
  done;
  List.rev !out

type stream = { mutable toks : (tok * int) list; src_len : int }

let peek st = match st.toks with [] -> None | (t, p) :: _ -> Some (t, p)

let next st =
  match st.toks with
  | [] -> raise (Err { position = st.src_len; message = "unexpected end of expression" })
  | (t, p) :: rest ->
    st.toks <- rest;
    (t, p)

let expect st what pred =
  let t, p = next st in
  if not (pred t) then raise (Err { position = p; message = "expected " ^ what })

let quoted_to_exp q pos =
  match Tokenizer.tokens q with
  | [] -> raise (Err { position = pos; message = "empty keyword" })
  | [ w ] -> Term w
  | ws -> Phrase ws

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Some (Tor, _) ->
    ignore (next st);
    Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_atom st in
  match peek st with
  | Some (Tand, _) ->
    ignore (next st);
    And (left, parse_and st)
  | _ -> left

and parse_atom st =
  let t, p = next st in
  match t with
  | Tquoted q -> quoted_to_exp q p
  | Tword w -> (
    match Tokenizer.tokens w with
    | [ w' ] -> Term w'
    | _ -> raise (Err { position = p; message = "invalid keyword" }))
  | Tnot -> Not (parse_atom st)
  | Tlparen ->
    let e = parse_or st in
    expect st "')'" (fun t -> t = Trparen);
    e
  | Twindow ->
    expect st "'('" (fun t -> t = Tlparen);
    let n, np = next st in
    let width =
      match n with
      | Tint k when k > 0 -> k
      | _ -> raise (Err { position = np; message = "expected window width" })
    in
    let words = ref [] in
    let rec more () =
      match next st with
      | Tcomma, _ ->
        let t, p = next st in
        (match t with
        | Tquoted q | Tword q -> (
          match Tokenizer.tokens q with
          | [ w ] -> words := w :: !words
          | _ -> raise (Err { position = p; message = "window takes single words" }))
        | _ -> raise (Err { position = p; message = "expected a word" }));
        more ()
      | Trparen, _ -> ()
      | _, p -> raise (Err { position = p; message = "expected ',' or ')'" })
    in
    more ();
    if !words = [] then raise (Err { position = p; message = "window needs at least one word" });
    Window (width, List.rev !words)
  | Tint k -> Term (string_of_int k)
  | Tand | Tor | Trparen | Tcomma ->
    raise (Err { position = p; message = "expected a keyword or '('" })

let of_string s =
  try
    let st = { toks = lex s; src_len = String.length s } in
    let e = parse_or st in
    match st.toks with
    | [] -> Ok e
    | (_, p) :: _ -> Error { position = p; message = "trailing tokens" }
  with Err e -> Error e

let of_string_exn s =
  match of_string s with
  | Ok e -> e
  | Error { position; message } ->
    invalid_arg (Printf.sprintf "Ftexp.of_string_exn: at %d: %s" position message)
