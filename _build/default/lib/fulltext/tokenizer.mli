(** Lexical analysis of character data.

    Tokens are maximal runs of ASCII letters and digits, lowercased.
    Bytes >= 128 are treated as letters so UTF-8 words survive as single
    tokens (without case folding). *)

val tokens : string -> string list
(** [tokens s] is the token list of [s], in order. *)

val iter : string -> (string -> unit) -> unit
(** [iter s f] applies [f] to each token of [s] without building a
    list. *)

val count : string -> int
(** Number of tokens in [s]. *)
