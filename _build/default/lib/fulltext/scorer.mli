(** Keyword-evidence scoring functions.

    §4.1 deliberately does not commit to an IR ranking algorithm ("our
    intention is not to propose yet another ranking algorithm for
    keyword search"), so the index takes the scorer as a parameter.
    Two standard choices are provided; both consume the same term
    statistics. *)

type t =
  | Tf_idf
      (** [(1 + ln tf) · ln(1 + N/df)] per matched term — the default,
          monotone along ancestor paths. *)
  | Bm25 of { k1 : float; b : float }
      (** Okapi BM25 with element-length normalization.  Longer scopes
          are discounted, so scores are {e not} monotone along ancestor
          paths (an exact paragraph can outscore its section). *)

val default : t
val bm25 : ?k1:float -> ?b:float -> unit -> t
(** Standard parameters k1 = 1.2, b = 0.75. *)

val term_score :
  t -> tf:int -> df:int -> n_tokens:int -> scope_len:int -> avg_scope_len:float -> float
(** Evidence contributed by one term occurring [tf] times in a scope of
    [scope_len] tokens; [df] is the term's collection frequency and
    [n_tokens] the collection size. *)

val to_string : t -> string
val of_string : string -> (t, string) result
