(* A faithful implementation of the original Porter algorithm, following
   the step structure of the 1980 paper.  The word is held in a mutable
   buffer [b] with logical end [k] (inclusive index of last character). *)

type state = { mutable b : Bytes.t; mutable k : int }

let is_letter c = c >= 'a' && c <= 'z'

(* [cons st i] is true when the character at [i] is a consonant, using
   Porter's rule: 'y' is a consonant when at position 0 or preceded by a
   vowel position (i.e. preceded by a consonant makes it a vowel). *)
let rec cons st i =
  match Bytes.get st.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (cons st (i - 1))
  | _ -> true

(* [measure st j] is m in the Porter paper, counted over [0..j]. *)
let measure st j =
  let n = ref 0 in
  let i = ref 0 in
  let continue_ = ref true in
  (* skip initial consonants *)
  while !continue_ do
    if !i > j then continue_ := false
    else if not (cons st !i) then continue_ := false
    else incr i
  done;
  if !i <= j then begin
    let in_vowel = ref true in
    incr i;
    while !i <= j do
      let c = cons st !i in
      if !in_vowel && c then begin
        incr n;
        in_vowel := false
      end
      else if (not !in_vowel) && not c then in_vowel := true;
      incr i
    done;
    if not !in_vowel then () (* ended in consonant run already counted *)
  end;
  !n

let vowel_in_stem st j =
  let rec go i = if i > j then false else if not (cons st i) then true else go (i + 1) in
  go 0

let double_cons st j = j >= 1 && Bytes.get st.b j = Bytes.get st.b (j - 1) && cons st j

(* consonant-vowel-consonant ending, where the final consonant is not w,
   x or y: signals a short stem like "hop" -> "hopping". *)
let cvc st i =
  i >= 2
  && cons st i
  && (not (cons st (i - 1)))
  && cons st (i - 2)
  &&
  match Bytes.get st.b i with
  | 'w' | 'x' | 'y' -> false
  | _ -> true

let ends st suffix =
  let ls = String.length suffix in
  let off = st.k - ls + 1 in
  if off < 0 then false
  else begin
    let rec eq i = i = ls || (Bytes.get st.b (off + i) = suffix.[i] && eq (i + 1)) in
    eq 0
  end

(* Length of the stem before [suffix] (index of its last char). *)
let stem_end st suffix = st.k - String.length suffix

let set_to st j replacement =
  (* Replace the suffix after position [j] with [replacement]. *)
  let lr = String.length replacement in
  Bytes.blit_string replacement 0 st.b (j + 1) lr;
  st.k <- j + lr

let replace_if_measure st suffix replacement threshold =
  if ends st suffix then begin
    let j = stem_end st suffix in
    if measure st j > threshold then set_to st j replacement;
    true
  end
  else false

(* Step 1a: plurals. *)
let step1a st =
  if ends st "sses" then st.k <- st.k - 2
  else if ends st "ies" then set_to st (stem_end st "ies") "i"
  else if ends st "ss" then ()
  else if ends st "s" then st.k <- st.k - 1

(* Step 1b: -ed and -ing. *)
let step1b st =
  let cleanup () =
    if ends st "at" then set_to st (stem_end st "at") "ate"
    else if ends st "bl" then set_to st (stem_end st "bl") "ble"
    else if ends st "iz" then set_to st (stem_end st "iz") "ize"
    else if double_cons st st.k then begin
      match Bytes.get st.b st.k with
      | 'l' | 's' | 'z' -> ()
      | _ -> st.k <- st.k - 1
    end
    else if measure st st.k = 1 && cvc st st.k then set_to st st.k "e"
  in
  if ends st "eed" then begin
    let j = stem_end st "eed" in
    if measure st j > 0 then st.k <- st.k - 1
  end
  else if ends st "ed" then begin
    let j = stem_end st "ed" in
    if vowel_in_stem st j then begin
      st.k <- j;
      cleanup ()
    end
  end
  else if ends st "ing" then begin
    let j = stem_end st "ing" in
    if vowel_in_stem st j then begin
      st.k <- j;
      cleanup ()
    end
  end

(* Step 1c: terminal y -> i when there is a vowel in the stem. *)
let step1c st =
  if ends st "y" && vowel_in_stem st (st.k - 1) then Bytes.set st.b st.k 'i'

let step2_pairs =
  [
    ("ational", "ate"); ("tional", "tion"); ("enci", "ence"); ("anci", "ance");
    ("izer", "ize"); ("abli", "able"); ("alli", "al"); ("entli", "ent");
    ("eli", "e"); ("ousli", "ous"); ("ization", "ize"); ("ation", "ate");
    ("ator", "ate"); ("alism", "al"); ("iveness", "ive"); ("fulness", "ful");
    ("ousness", "ous"); ("aliti", "al"); ("iviti", "ive"); ("biliti", "ble");
  ]

let step3_pairs =
  [
    ("icate", "ic"); ("ative", ""); ("alize", "al"); ("iciti", "ic");
    ("ical", "ic"); ("ful", ""); ("ness", "");
  ]

let run_pairs st pairs =
  let rec go = function
    | [] -> ()
    | (suffix, replacement) :: rest ->
      if replace_if_measure st suffix replacement 0 then () else go rest
  in
  go pairs

let step4_suffixes =
  [
    "al"; "ance"; "ence"; "er"; "ic"; "able"; "ible"; "ant"; "ement"; "ment";
    "ent"; "ou"; "ism"; "ate"; "iti"; "ous"; "ive"; "ize";
  ]

(* Step 4: drop suffix when measure of the stem exceeds 1.  -ion only
   drops after s or t. *)
let step4 st =
  let drop suffix =
    let j = stem_end st suffix in
    if measure st j > 1 then st.k <- j;
    true
  in
  let rec go = function
    | [] ->
      if ends st "ion" then begin
        let j = stem_end st "ion" in
        if j >= 0 && (Bytes.get st.b j = 's' || Bytes.get st.b j = 't') && measure st j > 1 then
          st.k <- j
      end
    | suffix :: rest -> if ends st suffix then ignore (drop suffix) else go rest
  in
  go step4_suffixes

(* Step 5a: remove terminal e. *)
let step5a st =
  if ends st "e" then begin
    let j = st.k - 1 in
    let m = measure st j in
    if m > 1 || (m = 1 && not (cvc st j)) then st.k <- j
  end

(* Step 5b: -ll -> -l when m > 1. *)
let step5b st =
  if Bytes.get st.b st.k = 'l' && double_cons st st.k && measure st st.k > 1 then
    st.k <- st.k - 1

let stem w =
  let n = String.length w in
  if n < 3 || not (String.for_all is_letter w) then w
  else begin
    let st = { b = Bytes.of_string w; k = n - 1 } in
    step1a st;
    step1b st;
    step1c st;
    run_pairs st step2_pairs;
    run_pairs st step3_pairs;
    step4 st;
    step5a st;
    step5b st;
    Bytes.sub_string st.b 0 (st.k + 1)
  end
