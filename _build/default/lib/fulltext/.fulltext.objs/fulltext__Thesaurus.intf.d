lib/fulltext/thesaurus.mli: Ftexp
