lib/fulltext/index.mli: Ftexp Scorer Xmldom
