lib/fulltext/stopwords.ml: Hashtbl List
