lib/fulltext/ftexp.mli: Format
