lib/fulltext/scorer.mli:
