lib/fulltext/thesaurus.ml: Array Ftexp Int List Map String
