lib/fulltext/tokenizer.mli:
