lib/fulltext/stemmer.mli:
