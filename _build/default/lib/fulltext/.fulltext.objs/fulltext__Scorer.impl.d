lib/fulltext/scorer.ml: Printf String
