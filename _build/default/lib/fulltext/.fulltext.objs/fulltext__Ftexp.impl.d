lib/fulltext/ftexp.ml: Buffer Char Format Hashtbl List Printf Stdlib String Tokenizer
