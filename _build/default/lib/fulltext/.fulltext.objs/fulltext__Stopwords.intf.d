lib/fulltext/stopwords.mli:
