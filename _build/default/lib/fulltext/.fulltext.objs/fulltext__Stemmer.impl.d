lib/fulltext/stemmer.ml: Bytes String
