lib/fulltext/index.ml: Array Float Ftexp Fun Hashtbl Int List Scorer Set Stemmer Stopwords Tokenizer Xmldom
