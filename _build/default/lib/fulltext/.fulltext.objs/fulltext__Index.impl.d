lib/fulltext/index.ml: Array Float Ftexp Fun Hashtbl Int List Printf Scorer Set Stemmer Stopwords Tokenizer Xmldom
