lib/fulltext/tokenizer.ml: Buffer Char List String
