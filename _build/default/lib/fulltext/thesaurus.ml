module Smap = Map.Make (String)

(* ring id per word, and the words of each ring *)
type t = { ring_of : int Smap.t; rings : string list array }

let empty = { ring_of = Smap.empty; rings = [||] }

let normalize w = String.lowercase_ascii (String.trim w)

let add_ring t ws =
  let ws = List.sort_uniq String.compare (List.map normalize ws) in
  let ws = List.filter (fun w -> w <> "") ws in
  if List.length ws < 2 then t
  else begin
    (* merge with any existing rings the words belong to *)
    let ring_ids =
      List.sort_uniq Int.compare (List.filter_map (fun w -> Smap.find_opt w t.ring_of) ws)
    in
    let merged =
      List.sort_uniq String.compare
        (ws @ List.concat_map (fun id -> t.rings.(id)) ring_ids)
    in
    let new_id = Array.length t.rings in
    let rings = Array.append t.rings [| merged |] in
    let ring_of = List.fold_left (fun acc w -> Smap.add w new_id acc) t.ring_of merged in
    { ring_of; rings }
  end

let of_list ringss = List.fold_left add_ring empty ringss

let synonyms t w =
  let w = normalize w in
  match Smap.find_opt w t.ring_of with
  | None -> []
  | Some id -> List.filter (fun w' -> w' <> w) t.rings.(id)

let is_empty t = Smap.is_empty t.ring_of

(* Expansion must only broaden the expression's matches (it is a
   relaxation), so negated subtrees are left alone: widening a keyword
   under [Not] would narrow the overall match. *)
let rec expand t e =
  match e with
  | Ftexp.Term w -> (
    match synonyms t w with
    | [] -> e
    | syns -> List.fold_left (fun acc s -> Ftexp.Or (acc, Ftexp.Term s)) (Ftexp.Term w) syns)
  | Ftexp.And (a, b) -> Ftexp.And (expand t a, expand t b)
  | Ftexp.Or (a, b) -> Ftexp.Or (expand t a, expand t b)
  | Ftexp.Not _ -> e
  | Ftexp.Phrase _ | Ftexp.Window _ -> e

let parse_file path =
  try
    let ic = open_in path in
    let rec lines acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        Ok acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then lines acc
        else lines (add_ring acc (String.split_on_char ',' line))
    in
    lines empty
  with Sys_error msg -> Error msg
