(** The Porter stemming algorithm (Porter, 1980).

    Maps inflected English word forms onto a common stem, e.g.
    ["streaming"], ["streamed"] and ["streams"] all stem to ["stream"].
    The paper's full-text predicate relies on an IR engine with stemming;
    this module is that substrate. *)

val stem : string -> string
(** [stem w] is the Porter stem of [w].  [w] is expected to be lowercase
    ASCII (as produced by {!Tokenizer}); words shorter than three
    characters and words containing non-letters are returned unchanged. *)
