(** Full-text search expressions — the [FTExp] language of the paper's
    [contains($i, FTExp)] predicate (§2.1).

    An expression is evaluated relative to a context element: it holds on
    an element when the element's subtree text satisfies it.  Supported
    forms: keywords (stemmed), conjunction, disjunction, negation,
    phrases and proximity windows — "as complex as an IR engine can
    handle" per the paper. *)

type t =
  | Term of string  (** A single keyword, matched after stemming. *)
  | And of t * t
  | Or of t * t
  | Not of t  (** Satisfied when the operand is not. *)
  | Phrase of string list  (** Consecutive tokens, in order. *)
  | Window of int * string list
      (** [Window (n, ws)]: all of [ws] occur within some span of [n]
          consecutive tokens, in any order. *)

val term : string -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t
val phrase : string list -> t
val window : int -> string list -> t

val keywords : t -> string list
(** All keywords mentioned, in first-occurrence order, unstemmed. *)

val positive_keywords : t -> string list
(** Keywords not under a [Not] — the terms whose occurrences can
    contribute evidence to a match. *)

val is_positive : t -> bool
(** [true] when the expression contains no [Not]: satisfaction is then
    monotone, i.e. preserved by ancestors ([ad + contains] inference
    rule of Figure 3 applies unconditionally). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints in the paper's concrete syntax, e.g.
    ["XML" and "streaming"]. *)

val to_string : t -> string

type parse_error = { position : int; message : string }

val of_string : string -> (t, parse_error) result
(** Parses the concrete syntax: quoted words or bare words, [and], [or],
    [not], parentheses, ["w1 w2"] phrases (a quoted string with spaces),
    and [window(n, "w1", "w2", ...)]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)
