type t = Tf_idf | Bm25 of { k1 : float; b : float }

let default = Tf_idf
let bm25 ?(k1 = 1.2) ?(b = 0.75) () = Bm25 { k1; b }

let term_score t ~tf ~df ~n_tokens ~scope_len ~avg_scope_len =
  if tf <= 0 || df <= 0 then 0.0
  else begin
    let tf = float_of_int tf and df = float_of_int df in
    let n = float_of_int n_tokens in
    match t with
    | Tf_idf -> (1.0 +. log tf) *. log (1.0 +. (n /. df))
    | Bm25 { k1; b } ->
      let idf = log (1.0 +. ((n -. df +. 0.5) /. (df +. 0.5))) in
      let norm =
        if avg_scope_len <= 0.0 then 1.0
        else 1.0 -. b +. (b *. float_of_int scope_len /. avg_scope_len)
      in
      idf *. (tf *. (k1 +. 1.0) /. (tf +. (k1 *. norm)))
  end

let to_string = function
  | Tf_idf -> "tfidf"
  | Bm25 { k1; b } -> Printf.sprintf "bm25(k1=%g,b=%g)" k1 b

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "tfidf" | "tf-idf" -> Ok Tf_idf
  | "bm25" -> Ok (bm25 ())
  | other -> Error (Printf.sprintf "unknown scorer %S (expected tfidf or bm25)" other)
