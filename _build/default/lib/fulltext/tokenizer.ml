let is_word_byte c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | c -> Char.code c >= 128

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let iter s f =
  let n = String.length s in
  let b = Buffer.create 16 in
  let flush () =
    if Buffer.length b > 0 then begin
      f (Buffer.contents b);
      Buffer.clear b
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if is_word_byte c then Buffer.add_char b (lower c) else flush ()
  done;
  flush ()

let tokens s =
  let acc = ref [] in
  iter s (fun t -> acc := t :: !acc);
  List.rev !acc

let count s =
  let n = ref 0 in
  iter s (fun _ -> incr n);
  !n
