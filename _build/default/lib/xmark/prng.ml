type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let split t = { state = mix (next t) }
