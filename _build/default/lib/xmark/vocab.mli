(** Word lists for synthetic text generation. *)

val common : string array
(** Frequent filler words (Shakespeare-derived, as in XMark). *)

val auction_terms : string array
(** Domain words for auction descriptions. *)

val cs_terms : string array
(** Domain words for article text (the paper's intro examples query for
    "XML" and "streaming"). *)

val first_names : string array
val last_names : string array
val countries : string array
val categories : string array

val sentence : Prng.t -> ?inject:(string * float) list -> int -> string
(** [sentence rng ~inject n] builds a sentence of roughly [n] words from
    {!common}; each [(word, p)] in [inject] is independently inserted at
    a random position with probability [p]. *)
