(** A small deterministic PRNG (splitmix64).

    Benchmarks and tests need identical documents across runs and across
    machines, so data generation never touches [Random]. *)

type t

val create : int -> t
(** [create seed]. *)

val next : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0 .. n-1].  [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0 .. x). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val split : t -> t
(** An independent stream. *)
