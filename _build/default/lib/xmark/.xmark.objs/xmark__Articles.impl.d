lib/xmark/articles.ml: List Prng String Vocab Xmldom
