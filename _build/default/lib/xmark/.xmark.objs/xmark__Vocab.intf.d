lib/xmark/vocab.mli: Prng
