lib/xmark/auction.mli: Xmldom
