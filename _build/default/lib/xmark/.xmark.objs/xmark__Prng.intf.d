lib/xmark/prng.mli:
