lib/xmark/xmark.ml: Articles Auction Prng Vocab
