lib/xmark/articles.mli: Prng Xmldom
