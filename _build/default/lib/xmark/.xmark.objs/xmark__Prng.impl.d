lib/xmark/prng.ml: Array Int64
