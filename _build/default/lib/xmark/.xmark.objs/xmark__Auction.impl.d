lib/xmark/auction.ml: Array List Printf Prng String Vocab Xmldom
