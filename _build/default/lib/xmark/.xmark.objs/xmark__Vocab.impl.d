lib/xmark/vocab.ml: List Prng String
