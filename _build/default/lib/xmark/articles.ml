module Xml = Xmldom.Xml

let el = Xml.element
let txt = Xml.text
let keywords = ("XML", "streaming")

type archetype =
  | Exact
  | Title_keywords
  | Algo_elsewhere
  | No_algorithm
  | Keywords_only
  | Irrelevant

let prose rng n = Vocab.sentence rng n

let cs_prose rng n =
  String.concat " " (List.init n (fun _ -> Prng.pick rng Vocab.cs_terms))

let keyword_sentence rng =
  let kw1, kw2 = keywords in
  String.concat " "
    [ prose rng 3; kw1; cs_prose rng 2; kw2; prose rng 3 ]

let paragraph rng ~with_keywords =
  let body = if with_keywords then keyword_sentence rng else prose rng (6 + Prng.int rng 8) in
  el "paragraph" [ txt body ]

let algorithm rng =
  el "algorithm"
    [ el "caption" [ txt (cs_prose rng 3) ]; el "body" [ txt (prose rng (5 + Prng.int rng 5)) ] ]

let section rng ~title_keywords ~with_algo ~kw_paragraph =
  let title_text = if title_keywords then keyword_sentence rng else cs_prose rng 4 in
  let n_paras = 1 + Prng.int rng 3 in
  let kw_at = if kw_paragraph then Prng.int rng n_paras else -1 in
  let paras = List.init n_paras (fun i -> paragraph rng ~with_keywords:(i = kw_at)) in
  let algo = if with_algo then [ algorithm rng ] else [] in
  el "section" ((el "title" [ txt title_text ] :: paras) @ algo)

let plain_section rng = section rng ~title_keywords:false ~with_algo:(Prng.bool rng 0.2) ~kw_paragraph:false

let article rng archetype id =
  let author _ =
    el "author" [ txt (Prng.pick rng Vocab.first_names ^ " " ^ Prng.pick rng Vocab.last_names) ]
  in
  let special =
    match archetype with
    | Exact -> [ section rng ~title_keywords:false ~with_algo:true ~kw_paragraph:true ]
    | Title_keywords -> [ section rng ~title_keywords:true ~with_algo:true ~kw_paragraph:false ]
    | Algo_elsewhere ->
      [
        section rng ~title_keywords:false ~with_algo:false ~kw_paragraph:true;
        section rng ~title_keywords:false ~with_algo:true ~kw_paragraph:false;
      ]
    | No_algorithm -> [ section rng ~title_keywords:false ~with_algo:false ~kw_paragraph:true ]
    | Keywords_only | Irrelevant -> []
  in
  let abstract_text =
    match archetype with
    | Keywords_only -> keyword_sentence rng
    | _ -> prose rng (8 + Prng.int rng 6)
  in
  let fillers = List.init (Prng.int rng 3) (fun _ -> plain_section rng) in
  (* Articles with No_algorithm must truly contain no algorithm. *)
  let fillers =
    match archetype with
    | No_algorithm ->
      List.map
        (fun _ -> section rng ~title_keywords:false ~with_algo:false ~kw_paragraph:false)
        fillers
    | _ -> fillers
  in
  el "article"
    ~attrs:[ ("id", "article" ^ string_of_int id) ]
    ([
       el "title" [ txt (cs_prose rng 5) ];
       author 0;
       author 1;
       el "abstract" [ el "paragraph" [ txt abstract_text ] ];
     ]
    @ special @ fillers)

let archetype_of_roll r =
  if r < 0.25 then Exact
  else if r < 0.37 then Title_keywords
  else if r < 0.49 then Algo_elsewhere
  else if r < 0.61 then No_algorithm
  else if r < 0.73 then Keywords_only
  else Irrelevant

let collection ?(seed = 7) ~count () =
  let rng = Prng.create seed in
  el "collection" (List.init count (fun i -> article rng (archetype_of_roll (Prng.float rng 1.0)) i))

let doc ?seed ~count () = Xmldom.Doc.of_tree (collection ?seed ~count ())
