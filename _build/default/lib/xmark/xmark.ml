(** Deterministic synthetic data: {!Xmark.Auction} generates the
    XMark-style documents of the paper's experiments (§6);
    {!Xmark.Articles} generates the article collections of its running
    example (§1); {!Xmark.Prng} and {!Xmark.Vocab} are their building
    blocks. *)

module Prng = Prng
module Vocab = Vocab
module Auction = Auction
module Articles = Articles
