let common =
  [|
    "sorrow"; "general"; "cage"; "preserver"; "duteous"; "hour"; "softly";
    "achieve"; "report"; "shortly"; "rejoices"; "king"; "realm"; "butter";
    "golden"; "officer"; "ready"; "honour"; "garden"; "thought"; "strange";
    "morning"; "silver"; "wonder"; "signal"; "mirror"; "castle"; "harvest";
    "gentle"; "summer"; "winter"; "answer"; "letter"; "marble"; "bridge";
    "window"; "market"; "village"; "journey"; "evening"; "river"; "mountain";
    "feather"; "candle"; "shadow"; "whisper"; "story"; "music"; "dream";
    "ancient"; "noble"; "quiet"; "bright"; "hidden"; "secret"; "simple";
    "velvet"; "copper"; "crystal"; "ember"; "meadow"; "orchard"; "harbor";
    "lantern"; "thunder"; "breeze"; "pearl"; "amber"; "willow"; "raven";
  |]

let auction_terms =
  [|
    "antique"; "vintage"; "rare"; "mint"; "collectible"; "estate"; "auction";
    "bid"; "reserve"; "shipping"; "payment"; "creditcard"; "cash"; "check";
    "gold"; "jewel"; "painting"; "sculpture"; "porcelain"; "furniture";
    "clock"; "watch"; "camera"; "guitar"; "stamp"; "coin"; "carpet"; "vase";
  |]

let cs_terms =
  [|
    "xml"; "streaming"; "query"; "database"; "index"; "algorithm"; "join";
    "pattern"; "tree"; "relaxation"; "ranking"; "keyword"; "search";
    "optimization"; "semantics"; "evaluation"; "fragment"; "schema";
    "document"; "structure"; "fulltext"; "retrieval"; "selectivity";
    "estimation"; "topk"; "pruning"; "bucket"; "score";
  |]

let first_names =
  [|
    "Amara"; "Boris"; "Chen"; "Dalia"; "Emil"; "Farah"; "Goran"; "Hana";
    "Ivan"; "Jun"; "Kira"; "Liam"; "Mona"; "Nils"; "Olga"; "Pavel"; "Qiu";
    "Rosa"; "Sven"; "Tara"; "Umar"; "Vera"; "Wei"; "Xena"; "Yuri"; "Zara";
  |]

let last_names =
  [|
    "Abbott"; "Bishop"; "Castro"; "Duval"; "Engel"; "Fischer"; "Garcia";
    "Huang"; "Ivanov"; "Jansen"; "Kovacs"; "Larsen"; "Meyer"; "Novak";
    "Okafor"; "Petrov"; "Quinn"; "Rossi"; "Suzuki"; "Tanaka"; "Ueda";
    "Vargas"; "Weber"; "Xu"; "Yamada"; "Zhang";
  |]

let countries =
  [|
    "United States"; "Germany"; "Japan"; "Brazil"; "Kenya"; "Australia";
    "Canada"; "France"; "India"; "Mexico"; "Norway"; "Poland"; "Spain";
  |]

let categories =
  [|
    "art"; "books"; "coins"; "electronics"; "furniture"; "instruments";
    "jewelry"; "maps"; "photography"; "pottery"; "stamps"; "textiles";
  |]

let sentence rng ?(inject = []) n =
  let words = ref [] in
  for _ = 1 to n do
    words := Prng.pick rng common :: !words
  done;
  List.iter
    (fun (w, p) ->
      if Prng.bool rng p then begin
        (* insert at a random position *)
        let pos = Prng.int rng (List.length !words + 1) in
        let rec insert i = function
          | rest when i = pos -> w :: rest
          | [] -> [ w ]
          | x :: rest -> x :: insert (i + 1) rest
        in
        words := insert 0 !words
      end)
    inject;
  String.concat " " !words
