(** INEX / SIGMOD-Record-style article collections — the data of the
    paper's running example (Figure 1).

    Articles are generated from archetypes chosen so that the example
    queries Q1 ⊂ Q2, Q3 ⊂ Q4 ⊂ Q5 ⊂ Q6 have strictly growing answer
    sets:

    - [Exact]: a section contains an algorithm and a paragraph with the
      keywords — matches Q1.
    - [Title_keywords]: the matching section's keywords sit in its
      title, not in a paragraph — matches Q2 but not Q1.
    - [Algo_elsewhere]: the keyword paragraph and the algorithm are in
      different sections — matches Q3 but not Q1/Q2.
    - [No_algorithm]: keywords in a paragraph, no algorithm anywhere —
      matches Q5 only.
    - [Keywords_only]: keywords only in the article abstract — matches
      Q6 only.
    - [Irrelevant]: no target keywords at all. *)

type archetype =
  | Exact
  | Title_keywords
  | Algo_elsewhere
  | No_algorithm
  | Keywords_only
  | Irrelevant

val article : Prng.t -> archetype -> int -> Xmldom.Xml.t
(** [article rng archetype id]. *)

val collection : ?seed:int -> count:int -> unit -> Xmldom.Xml.t
(** A [<collection>] of [count] articles with a fixed archetype mix
    (roughly 25% [Exact], 12% [Title_keywords], 12% [Algo_elsewhere],
    12% [No_algorithm], 12% [Keywords_only], 27% [Irrelevant]). *)

val doc : ?seed:int -> count:int -> unit -> Xmldom.Doc.t

val keywords : string * string
(** The target keyword pair, [("XML", "streaming")]. *)
