module Xml = Xmldom.Xml

let el = Xml.element
let txt = Xml.text

(* Mixed-content text element with optional inline markup.  [full_markup]
   forces all three of bold/keyword/emph to be present (a fraction of
   items must satisfy text[./bold and ./keyword and ./emph] exactly). *)
let text_element rng ?(inject = []) ?(full_markup = false) () =
  let part () = txt (Vocab.sentence rng ~inject (3 + Prng.int rng 6)) in
  let inline name = el name [ txt (Prng.pick rng Vocab.auction_terms) ] in
  let kids = ref [ part () ] in
  let maybe name p =
    if full_markup || Prng.bool rng p then begin
      kids := part () :: inline name :: !kids
    end
  in
  maybe "bold" 0.45;
  maybe "keyword" 0.5;
  maybe "emph" 0.45;
  el "text" (List.rev !kids)

let rec parlist rng depth ~inject =
  let n_items = 1 + Prng.int rng 3 in
  let listitem _ =
    if depth < 2 && Prng.bool rng 0.3 then el "listitem" [ parlist rng (depth + 1) ~inject ]
    else el "listitem" [ text_element rng ~inject () ]
  in
  el "parlist" (List.init n_items listitem)

let description rng ~inject =
  let body =
    let r = Prng.float rng 1.0 in
    if r < 0.45 then [ text_element rng ~inject () ]
    else if r < 0.85 then [ parlist rng 0 ~inject ]
    else
      (* annotation interposes: description//parlist but not
         description/parlist *)
      [ el "annotation" [ parlist rng 0 ~inject ] ]
  in
  el "description" body

let mail rng ~inject =
  let person () =
    Prng.pick rng Vocab.first_names ^ " " ^ Prng.pick rng Vocab.last_names
  in
  let full_markup = Prng.bool rng 0.2 in
  el "mail"
    [
      el "from" [ txt (person ()) ];
      el "to" [ txt (person ()) ];
      el "date" [ txt (Printf.sprintf "%02d/%02d/2003" (1 + Prng.int rng 12) (1 + Prng.int rng 28)) ];
      text_element rng ~inject ~full_markup ();
    ]

let item rng i =
  (* Keywords injected into this item's prose: a couple of auction terms
     at moderate rates, so contains predicates are selective but not
     vanishing. *)
  let inject =
    [ ("gold", 0.12); ("antique", 0.15); ("auction", 0.2); ("vintage", 0.1) ]
  in
  let name_words =
    String.concat " "
      (List.init (2 + Prng.int rng 2) (fun _ -> Prng.pick rng Vocab.auction_terms))
  in
  let incategories =
    if Prng.bool rng 0.3 then []
    else
      List.init (1 + Prng.int rng 3) (fun _ ->
          el "incategory"
            ~attrs:[ ("category", "category" ^ string_of_int (Prng.int rng 12)) ]
            [])
  in
  (* Mailboxes are rare, as in XMark: queries over mail content stay
     selective enough that top-K forces relaxation even on large
     documents (the regime of the paper's figures 10-16). *)
  let mailbox =
    let n = if Prng.bool rng 0.88 then 0 else 1 + Prng.int rng 3 in
    el "mailbox" (List.init n (fun _ -> mail rng ~inject))
  in
  el "item"
    ~attrs:[ ("id", "item" ^ string_of_int i) ]
    ([
       el "location" [ txt (Prng.pick rng Vocab.countries) ];
       el "quantity" [ txt (string_of_int (1 + Prng.int rng 5)) ];
       el "name" [ txt name_words ];
       el "payment" [ txt (if Prng.bool rng 0.5 then "Creditcard" else "Cash") ];
       description rng ~inject;
       el "shipping" [ txt "Will ship internationally" ];
     ]
    @ incategories
    @ [ mailbox ])

let category rng i =
  el "category"
    ~attrs:[ ("id", "category" ^ string_of_int i) ]
    [
      el "name" [ txt Vocab.categories.(i mod Array.length Vocab.categories) ];
      el "description" [ text_element rng () ];
    ]

let person rng i =
  el "person"
    ~attrs:[ ("id", "person" ^ string_of_int i) ]
    [
      el "name" [ txt (Prng.pick rng Vocab.first_names ^ " " ^ Prng.pick rng Vocab.last_names) ];
      el "emailaddress" [ txt (Printf.sprintf "mailto:user%d@example.org" i) ];
      el "country" [ txt (Prng.pick rng Vocab.countries) ];
    ]

let region_names = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

(* Open auctions carry numeric price data as attributes and elements —
   the substrate for value-based predicates like [@currentprice < 100]
   (§2.1) — plus bids and an annotation with the shared description
   structure. *)
let open_auction rng i ~items =
  let initial = 5 + Prng.int rng 200 in
  let n_bids = Prng.int rng 5 in
  let increases = List.init n_bids (fun _ -> 1 + Prng.int rng 30) in
  let current = List.fold_left ( + ) initial increases in
  let bid increase =
    el "bidder"
      [
        el "date" [ txt (Printf.sprintf "%02d/%02d/2003" (1 + Prng.int rng 12) (1 + Prng.int rng 28)) ];
        el "personref" ~attrs:[ ("person", "person" ^ string_of_int (Prng.int rng (max 1 (items / 4)))) ] [];
        el "increase" [ txt (string_of_int increase) ];
      ]
  in
  el "open_auction"
    ~attrs:
      [
        ("id", "open_auction" ^ string_of_int i);
        ("currentprice", string_of_int current);
      ]
    ([
       el "initial" [ txt (string_of_int initial) ];
       el "itemref" ~attrs:[ ("item", "item" ^ string_of_int (Prng.int rng items)) ] [];
     ]
    @ List.map bid increases
    @ [
        el "current" [ txt (string_of_int current) ];
        el "annotation" [ description rng ~inject:[ ("auction", 0.3) ] ];
      ])

let closed_auction rng i ~items =
  let price = 10 + Prng.int rng 500 in
  el "closed_auction"
    ~attrs:[ ("id", "closed_auction" ^ string_of_int i); ("price", string_of_int price) ]
    [
      el "seller" ~attrs:[ ("person", "person" ^ string_of_int (Prng.int rng (max 1 (items / 4)))) ] [];
      el "buyer" ~attrs:[ ("person", "person" ^ string_of_int (Prng.int rng (max 1 (items / 4)))) ] [];
      el "itemref" ~attrs:[ ("item", "item" ^ string_of_int (Prng.int rng items)) ] [];
      el "price" [ txt (string_of_int price) ];
      el "date" [ txt (Printf.sprintf "%02d/%02d/2003" (1 + Prng.int rng 12) (1 + Prng.int rng 28)) ];
    ]

let site ?(seed = 42) ~items () =
  let rng = Prng.create seed in
  let n_regions = Array.length region_names in
  let region_items = Array.make n_regions [] in
  for i = items - 1 downto 0 do
    let r = i mod n_regions in
    region_items.(r) <- item rng i :: region_items.(r)
  done;
  let regions =
    el "regions"
      (Array.to_list (Array.mapi (fun r name -> el name region_items.(r)) region_names))
  in
  let categories = el "categories" (List.init 12 (fun i -> category rng i)) in
  let people = el "people" (List.init (max 1 (items / 4)) (fun i -> person rng i)) in
  let open_auctions =
    el "open_auctions" (List.init (max 1 (items / 2)) (fun i -> open_auction rng i ~items))
  in
  let closed_auctions =
    el "closed_auctions" (List.init (max 1 (items / 4)) (fun i -> closed_auction rng i ~items))
  in
  el "site" [ regions; categories; people; open_auctions; closed_auctions ]

let doc ?seed ~items () = Xmldom.Doc.of_tree (site ?seed ~items ())

let items_per_mb = 200

let doc_of_mb ?seed mb =
  let items = max 6 (int_of_float (mb *. float_of_int items_per_mb)) in
  doc ?seed ~items ()
