(** XMark-style auction documents (the dataset of the paper's §6).

    The generator reproduces the schema features the FleXPath
    experiments exploit: the recursive [parlist]/[listitem] nesting
    (enables axis generalization), the optional [incategory] and the
    variable [bold]/[keyword]/[emph] markup (enable leaf deletion), and
    the [text] element shared between [mail] and [listitem] (enables
    subtree promotion).  A small [annotation] wrapper occasionally
    interposes between [description] and [parlist], so
    [description/parlist] vs [description//parlist] differ — the
    generalization the paper's query Q1 admits.

    Documents scale linearly in [items]; roughly 200 items serialize to
    ~0.5 MB.  All randomness is deterministic in [seed]. *)

val site : ?seed:int -> items:int -> unit -> Xmldom.Xml.t
(** The [<site>] document tree with [items] items spread over the six
    regions, plus proportional [categories] and [people] sections. *)

val doc : ?seed:int -> items:int -> unit -> Xmldom.Doc.t
(** [site] converted to the arena representation. *)

val items_per_mb : int
(** Calibration constant: the number of items whose serialization is
    roughly one "paper megabyte" (see DESIGN.md on size scaling). *)

val doc_of_mb : ?seed:int -> float -> Xmldom.Doc.t
(** [doc_of_mb mb] generates a document sized like an [mb]-megabyte
    XMark file in the paper's setup. *)
