module Doc = Xmldom.Doc

(* Stack-tree-desc of Al-Khalifa et al.: sweep both sorted lists in
   document order, keeping the stack of ancestor candidates whose
   subtrees are still open.  Every stack member containing the current
   descendant produces a pair. *)
let ad_pairs doc ~anc ~desc =
  let out = ref [] in
  let stack = ref [] in
  let na = Array.length anc and nd = Array.length desc in
  let ai = ref 0 and di = ref 0 in
  let pop_closed e =
    (* drop stack entries whose subtree ended before [e] *)
    let rec go = function
      | s :: rest when e >= Doc.subtree_end doc s -> go rest
      | stack -> stack
    in
    stack := go !stack
  in
  while !di < nd do
    let d = desc.(!di) in
    (* push all ancestors starting before d *)
    while !ai < na && anc.(!ai) <= d do
      pop_closed anc.(!ai);
      stack := anc.(!ai) :: !stack;
      incr ai
    done;
    pop_closed d;
    List.iter (fun a -> if a <> d then out := (a, d) :: !out) !stack;
    incr di
  done;
  List.rev !out

let pc_pairs doc ~anc ~desc =
  List.filter (fun (a, d) -> Doc.is_parent doc a d) (ad_pairs doc ~anc ~desc)

let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let subtree_slice doc sorted e =
  let lo = lower_bound sorted (e + 1) in
  let hi = lower_bound sorted (Doc.subtree_end doc e) in
  (lo, hi)

let children_with_tag doc sorted e =
  let lo, hi = subtree_slice doc sorted e in
  let out = ref [] in
  for i = hi - 1 downto lo do
    if Doc.is_parent doc e sorted.(i) then out := sorted.(i) :: !out
  done;
  !out
