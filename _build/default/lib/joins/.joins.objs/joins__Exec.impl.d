lib/joins/exec.ml: Array Either Encoded Float Fulltext Hashtbl Int List Relax String Structural_join Tpq Xmldom
