lib/joins/encoded.mli: Format Fulltext Relax Tpq
