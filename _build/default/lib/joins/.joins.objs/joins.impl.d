lib/joins/joins.ml: Encoded Exec Structural_join
