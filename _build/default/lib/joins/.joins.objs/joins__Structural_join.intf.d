lib/joins/structural_join.mli: Xmldom
