lib/joins/structural_join.ml: Array List Xmldom
