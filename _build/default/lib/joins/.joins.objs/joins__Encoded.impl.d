lib/joins/encoded.ml: Array Format Fulltext Hashtbl Int List Option Printf Relax String Tpq
