lib/joins/exec.mli: Encoded Fulltext Relax Tpq Xmldom
