(** The relaxation operators of §3.5, plus the §3.4 tag
    generalization.

    Theorem 2: compositions of the four core operators generate exactly
    the valid structural and contains relaxations of a tree pattern
    query.  Each application strictly enlarges the query's answer set
    over every document.  Tag generalization (replacing a tag with its
    supertype from a type hierarchy) is the paper's first "other
    relaxation" and composes with the rest; it only applies when a
    hierarchy is supplied. *)

type t =
  | Axis_generalization of int
      (** [γ_pc($x,$y)] (§3.5.1): the pc-edge into the given variable
          becomes an ad-edge. *)
  | Leaf_deletion of int
      (** [λ_$x] (§3.5.2): delete a leaf variable; its value-based
          predicates disappear; a distinguished leaf passes the role to
          its parent.  The root is never deletable. *)
  | Subtree_promotion of int
      (** [σ_$x] (§3.5.3): the subtree rooted at the variable moves
          under its grandparent, connected by an ad-edge. *)
  | Contains_promotion of int * Fulltext.Ftexp.t
      (** [κ_$x] (§3.5.4): the contains predicate moves from the
          variable to its parent. *)
  | Tag_generalization of int * string
      (** §3.4: the variable's tag is replaced by the given tag, which
          must be its immediate supertype in the hierarchy. *)

val apply : ?hierarchy:Tpq.Hierarchy.t -> Tpq.Query.t -> t -> (Tpq.Query.t, string) result
(** [apply q op] — fails when [op] is not applicable to [q] (wrong edge
    kind, not a leaf, no grandparent, missing contains, tag not a
    declared subtype, ...). *)

val apply_exn : ?hierarchy:Tpq.Hierarchy.t -> Tpq.Query.t -> t -> Tpq.Query.t

val applicable : ?hierarchy:Tpq.Hierarchy.t -> Tpq.Query.t -> t list
(** Every operator applicable to [q], each guaranteed to succeed and to
    produce a query not equivalent to [q]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
