module Query = Tpq.Query

type entry = { query : Query.t; ops : Op.t list; penalty : float; score : float }

let enumerate ?(hierarchy = Tpq.Hierarchy.empty) ?(max_queries = 500) q0 =
  let seen = Hashtbl.create 64 in
  Hashtbl.add seen (Query.canonical_key q0) ();
  let out = ref [ (q0, []) ] in
  let queue = Queue.create () in
  Queue.add (q0, []) queue;
  let count = ref 1 in
  while (not (Queue.is_empty queue)) && !count < max_queries do
    let q, ops = Queue.pop queue in
    List.iter
      (fun op ->
        if !count < max_queries then begin
          match Op.apply ~hierarchy q op with
          | Error _ -> ()
          | Ok q' ->
            let key = Query.canonical_key q' in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              incr count;
              let entry = (q', ops @ [ op ]) in
              out := entry :: !out;
              Queue.add entry queue
            end
        end)
      (Op.applicable ~hierarchy q)
  done;
  List.rev !out

let cheapest_next env q =
  let hierarchy = Penalty.hierarchy env in
  let best = ref None in
  List.iter
    (fun op ->
      match Op.apply ~hierarchy q op with
      | Error _ -> ()
      | Ok q' ->
        let p = Penalty.relaxation_penalty env q' in
        let better =
          match !best with
          | None -> true
          | Some (op0, _, p0) -> p < p0 -. 1e-12 || (Float.abs (p -. p0) <= 1e-12 && Op.compare op op0 < 0)
        in
        if better then best := Some (op, q', p))
    (Op.applicable ~hierarchy q);
  !best

let sequence ?(max_steps = 32) env =
  let q0 = Penalty.original env in
  let base = Penalty.base_score env in
  let rec go q ops steps acc =
    if steps >= max_steps then List.rev acc
    else
      match cheapest_next env q with
      | None -> List.rev acc
      | Some (op, q', p) ->
        let ops = ops @ [ op ] in
        let entry = { query = q'; ops; penalty = p; score = base -. p } in
        go q' ops (steps + 1) (entry :: acc)
  in
  go q0 [] 0 [ { query = q0; ops = []; penalty = 0.0; score = base } ]
