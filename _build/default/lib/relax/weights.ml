module Pred = Tpq.Pred

let uniform = Penalty.uniform

let by_kind ?(structural = 1.0) ?(contains = 1.0) ?(tag = 1.0) () p =
  match p with
  | Pred.Pc _ | Pred.Ad _ -> structural
  | Pred.Contains _ -> contains
  | Pred.Tag_eq _ -> tag
  | Pred.Attr _ -> 1.0

let per_var overrides base p =
  List.fold_left
    (fun w v ->
      match List.assoc_opt v overrides with
      | Some factor -> w *. factor
      | None -> w)
    (base p) (Pred.vars p)

let scale c base p = c *. base p

let parse spec =
  let parts = String.split_on_char ',' spec |> List.map String.trim in
  let parts = List.filter (fun s -> s <> "") parts in
  let rec go structural contains tag vars = function
    | [] ->
      Ok (per_var vars (by_kind ~structural ~contains ~tag ()))
    | part :: rest -> (
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" part)
      | Some i -> (
        let key = String.trim (String.sub part 0 i) in
        let value = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
        match float_of_string_opt value with
        | None -> Error (Printf.sprintf "bad weight %S" value)
        | Some w when w < 0.0 -> Error "weights must be non-negative"
        | Some w -> (
          match key with
          | "structural" -> go w contains tag vars rest
          | "contains" -> go structural w tag vars rest
          | "tag" -> go structural contains w vars rest
          | _ ->
            if String.length key > 3 && String.sub key 0 3 = "var" then begin
              match int_of_string_opt (String.sub key 3 (String.length key - 3)) with
              | Some v -> go structural contains tag ((v, w) :: vars) rest
              | None -> Error (Printf.sprintf "bad variable in %S" key)
            end
            else Error (Printf.sprintf "unknown weight key %S" key))))
  in
  go 1.0 1.0 1.0 [] parts
