(** Query relaxation (§3): {!Relax.Op} implements the four relaxation
    operators (axis generalization, leaf deletion, subtree promotion,
    contains promotion), {!Relax.Penalty} the predicate weights and
    data-derived penalties of §4.3, and {!Relax.Space} the enumeration
    and penalty-ordered traversal of the relaxation space. *)

module Op = Op
module Penalty = Penalty
module Space = Space
module Weights = Weights
