(** Predicate weights, penalties and structural scores (§4.3).

    All penalties are computed against the {e original} query's closure:
    the weight function is keyed by predicates of that closure, and the
    penalty of a relaxed query is the sum of the penalties of the
    closure predicates it no longer implies.  Because the sum only
    depends on the set of dropped predicates, scores are
    order-invariant (Theorem 3). *)

type weights = Tpq.Pred.t -> float

val uniform : weights
(** Weight 1 for every predicate — the assignment of Example 1. *)

val scaled : float -> weights
(** Constant weight [c]. *)

type t
(** Penalty environment: the original query, its closure, tag bindings,
    statistics, weights and (optionally) a type hierarchy. *)

val make : ?hierarchy:Tpq.Hierarchy.t -> Stats.t -> weights -> Tpq.Query.t -> t

val original : t -> Tpq.Query.t
val hierarchy : t -> Tpq.Hierarchy.t
val closure : t -> Tpq.Pred.t list

val scored_preds : t -> Tpq.Pred.t list
(** The closure predicates that participate in scoring: structural and
    contains predicates, plus tag predicates that the hierarchy allows
    to be generalized.  The executor and the termination bounds share
    this definition. *)

val predicate_penalty : t -> Tpq.Pred.t -> float
(** π(p) for a scored predicate of the original closure (§4.3.1):
    - dropping [pc($i,$j)] (keeping ad): [#pc/#ad × w];
    - dropping [ad($i,$j)]: [#ad/(#ti·#tj) × w];
    - dropping [contains($i,F)]: [#contains(ti,F)/#contains(tl,F) × w]
      with [$l] the parent of [$i] in the original query (factor 1 for
      the root);
    - generalizing [$i.tag = t] to its supertype s:
      [#(t)/#(extension of s) × w] (§3.4 analog).
    Attribute predicates have penalty 0 (they are dropped only as a
    side effect of node deletion, §3.3). *)

val dropped_preds : t -> Tpq.Query.t -> Tpq.Pred.t list
(** Predicates of the original closure not implied by the relaxed
    query: [closure(orig) \ closure(relaxed)], restricted to structural
    and contains predicates over surviving-or-deleted variables. *)

val base_score : t -> float
(** Σ w(p) over the structural predicates present in the original query
    — the structural score of an exact answer (Example 1: 3 for Q1). *)

val max_keyword_score : t -> float
(** Σ w over the contains predicates of the original query, each worth
    at most 1 after IR normalization — the [m] of the §5.1 pruning
    rule. *)

val structural_score : t -> Tpq.Query.t -> float
(** [base_score − Σ π(p) for p dropped]: the structural score shared by
    every answer to the given relaxed query (as evaluated by DPO). *)

val relaxation_penalty : t -> Tpq.Query.t -> float
(** Σ π(p) over [dropped_preds]. *)

val score_of_dropped : t -> Tpq.Pred.t list -> float
(** [base_score − Σ π(p)] for an explicit dropped set — used by the
    join engine, which tracks per-answer satisfied predicate sets. *)
