lib/relax/op.ml: Format Fulltext List Printf Result Stdlib Tpq
