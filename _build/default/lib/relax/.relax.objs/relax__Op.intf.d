lib/relax/op.mli: Format Fulltext Tpq
