lib/relax/penalty.mli: Stats Tpq
