lib/relax/weights.mli: Penalty
