lib/relax/weights.ml: List Penalty Printf String Tpq
