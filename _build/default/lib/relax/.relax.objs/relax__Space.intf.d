lib/relax/space.mli: Op Penalty Tpq
