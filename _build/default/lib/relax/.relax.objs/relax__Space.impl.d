lib/relax/space.ml: Float Hashtbl List Op Penalty Queue Tpq
