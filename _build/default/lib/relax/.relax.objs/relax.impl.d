lib/relax/relax.ml: Op Penalty Space Weights
