lib/relax/penalty.ml: Float List Option Stats Tpq Xmldom
