(** The space of relaxations of a query (§3.5) and penalty-guided
    traversal of it.

    DPO walks a chain [Q = Q0 ⊂ Q1 ⊂ Q2 ⊂ ...] where each step applies
    the applicable operator with the smallest additional penalty —
    "drop the predicate with the lowest penalty" in the paper's
    predicate view.  SSO consumes the same chain but decides the cut
    point with selectivity estimates instead of evaluation. *)

type entry = {
  query : Tpq.Query.t;
  ops : Op.t list;  (** operators applied to the original, in order. *)
  penalty : float;  (** total penalty of the predicates dropped. *)
  score : float;  (** structural score of its answers (base − penalty). *)
}

val enumerate :
  ?hierarchy:Tpq.Hierarchy.t ->
  ?max_queries:int ->
  Tpq.Query.t ->
  (Tpq.Query.t * Op.t list) list
(** Breadth-first closure of the original query under all applicable
    operators, de-duplicated up to isomorphism; the original comes
    first with [[]].  Stops after [max_queries] distinct queries
    (default 500) — the space is finite but can be exponential in the
    query size. *)

val cheapest_next : Penalty.t -> Tpq.Query.t -> (Op.t * Tpq.Query.t * float) option
(** The applicable operator whose application drops the cheapest
    additional penalty (measured against the original query), with the
    resulting query and its {e total} penalty.  [None] when no operator
    applies.  Deterministic tie-breaking. *)

val sequence : ?max_steps:int -> Penalty.t -> entry list
(** The greedy chain starting at the original query ([ops = []],
    [penalty = 0]), following {!cheapest_next} until exhaustion or
    [max_steps] (default 32).  Scores are non-increasing along the
    chain. *)
