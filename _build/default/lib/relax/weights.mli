(** Weight assignments for query predicates (§4.1).

    "A ranking scheme may associate a weight with each predicate present
    in the query.  This weight may be user-specified, or computed by
    analyzing the input document."  This module provides the
    user-specified side: combinators to build a {!Penalty.weights}
    function, and a concrete syntax for the command line. *)

val uniform : Penalty.weights
(** Weight 1 everywhere — Example 1's assignment. *)

val by_kind : ?structural:float -> ?contains:float -> ?tag:float -> unit -> Penalty.weights
(** Constant weight per predicate kind (defaults 1). *)

val per_var : (int * float) list -> Penalty.weights -> Penalty.weights
(** [per_var overrides base] multiplies the base weight of every
    predicate by the factor of each variable it mentions (missing
    variables count as factor 1).  A pc($1,$2) predicate with overrides
    on both $1 and $2 is scaled by both. *)

val scale : float -> Penalty.weights -> Penalty.weights

val parse : string -> (Penalty.weights, string) result
(** Comma-separated spec, e.g. ["structural=2,contains=0.5,var3=4"]:
    [structural], [contains] and [tag] set per-kind weights; [varN]
    multiplies predicates mentioning variable N. *)
