module Query = Tpq.Query
module Containment = Tpq.Containment
module Hierarchy = Tpq.Hierarchy
module Ftexp = Fulltext.Ftexp

type t =
  | Axis_generalization of int
  | Leaf_deletion of int
  | Subtree_promotion of int
  | Contains_promotion of int * Ftexp.t
  | Tag_generalization of int * string

let apply ?(hierarchy = Hierarchy.empty) q op =
  match op with
  | Axis_generalization v -> (
    match Query.parent q v with
    | Some (_, Query.Child) -> Ok (Query.set_axis q v Query.Descendant)
    | Some (_, Query.Descendant) -> Error "edge is already ancestor-descendant"
    | None -> Error "root has no incoming edge")
  | Leaf_deletion v ->
    (* §3.5.2 moves the distinguished role to the parent when the
       distinguished leaf is deleted, but the resulting query's answers
       then bind a different variable — it is not a containing query,
       so it is not a relaxation (Definition 1).  The paper's examples
       never hit this case (their distinguished node is the root); we
       forbid it. *)
    if Query.distinguished q = v then
      Error "cannot delete the distinguished variable: the result would not contain the query"
    else Query.delete_leaf q v
  | Subtree_promotion v -> (
    match Query.parent q v with
    | None -> Error "cannot promote the root"
    | Some (p, _) -> (
      match Query.parent q p with
      | None -> Error "no grandparent to promote to"
      | Some (g, _) -> Query.reparent q v g Query.Descendant))
  | Contains_promotion (v, f) -> (
    match Query.parent q v with
    | None -> Error "cannot promote contains from the root"
    | Some (p, _) ->
      Result.map
        (fun q' ->
          (* collapse duplicates the move may create on the parent *)
          Query.update_node q' p (fun n ->
              let seen = ref [] in
              let contains =
                List.filter
                  (fun e ->
                    if List.exists (Ftexp.equal e) !seen then false
                    else begin
                      seen := e :: !seen;
                      true
                    end)
                  n.contains
              in
              { n with contains }))
        (Query.move_contains q ~from_var:v ~to_var:p f))
  | Tag_generalization (v, super) -> (
    if not (Query.mem q v) then Error "unknown variable"
    else
      match (Query.node q v).tag with
      | None -> Error "wildcard tags cannot be generalized"
      | Some tag ->
        if Hierarchy.supertype hierarchy tag = Some super then
          Ok (Query.update_node q v (fun n -> { n with tag = Some super }))
        else Error (Printf.sprintf "%s is not the declared supertype of %s" super tag))

let apply_exn ?hierarchy q op =
  match apply ?hierarchy q op with
  | Ok q' -> q'
  | Error msg -> invalid_arg ("Op.apply_exn: " ^ msg)

let equivalent hierarchy a b =
  Containment.contained ~hierarchy a b && Containment.contained ~hierarchy b a

let candidates hierarchy q =
  let vars = Query.vars q in
  let axis_gens =
    List.filter_map
      (fun v ->
        match Query.parent q v with
        | Some (_, Query.Child) -> Some (Axis_generalization v)
        | _ -> None)
      vars
  in
  let deletions =
    List.filter_map
      (fun v -> if v <> Query.root q && Query.is_leaf q v then Some (Leaf_deletion v) else None)
      vars
  in
  let promotions =
    List.filter_map
      (fun v ->
        match Query.parent q v with
        | Some (p, _) when Query.parent q p <> None -> Some (Subtree_promotion v)
        | _ -> None)
      vars
  in
  let contains_promotions =
    List.concat_map
      (fun v ->
        if v = Query.root q then []
        else List.map (fun f -> Contains_promotion (v, f)) (Query.node q v).contains)
      vars
  in
  let tag_generalizations =
    if Hierarchy.is_empty hierarchy then []
    else
      List.filter_map
        (fun v ->
          match (Query.node q v).tag with
          | Some tag -> (
            match Hierarchy.supertype hierarchy tag with
            | Some super -> Some (Tag_generalization (v, super))
            | None -> None)
          | None -> None)
        vars
  in
  axis_gens @ deletions @ promotions @ contains_promotions @ tag_generalizations

let applicable ?(hierarchy = Hierarchy.empty) q =
  List.filter
    (fun op ->
      match apply ~hierarchy q op with
      | Error _ -> false
      | Ok q' -> not (equivalent hierarchy q q'))
    (candidates hierarchy q)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp fmt = function
  | Axis_generalization v -> Format.fprintf fmt "generalize-axis($%d)" v
  | Leaf_deletion v -> Format.fprintf fmt "delete-leaf($%d)" v
  | Subtree_promotion v -> Format.fprintf fmt "promote-subtree($%d)" v
  | Contains_promotion (v, f) -> Format.fprintf fmt "promote-contains($%d, %a)" v Ftexp.pp f
  | Tag_generalization (v, super) -> Format.fprintf fmt "generalize-tag($%d, %s)" v super

let to_string op = Format.asprintf "%a" pp op
