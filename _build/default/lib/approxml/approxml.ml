module Doc = Xmldom.Doc
module Index = Fulltext.Index
module Query = Tpq.Query
module Semantics = Tpq.Semantics

type t = {
  doc : Doc.t;
  (* CSR-style closure: for element e, targets/distances in
     [offsets.(e) .. offsets.(e+1) - 1].  Every (ancestor, descendant)
     pair on a common path is materialized. *)
  offsets : int array;
  targets : int array;
  distances : int array;
}

let build ?(max_edges = 20_000_000) doc =
  let n = Doc.size doc in
  (* total edges = Σ_e depth(e) *)
  let total = ref 0 in
  (try
     Doc.iter_elements doc (fun e ->
         total := !total + Doc.level doc e;
         if !total > max_edges then raise Exit)
   with Exit -> ());
  if !total > max_edges then
    Error
      (Printf.sprintf
         "document closure needs more than %d shortcut edges (%d elements): data relaxation \
          does not scale to this document"
         max_edges n)
  else begin
    let offsets = Array.make (n + 1) 0 in
    Doc.iter_elements doc (fun e ->
        (* edges start at ancestors; count per source below *)
        List.iter (fun a -> offsets.(a + 1) <- offsets.(a + 1) + 1) (Doc.ancestors doc e));
    for i = 1 to n do
      offsets.(i) <- offsets.(i) + offsets.(i - 1)
    done;
    let m = offsets.(n) in
    let targets = Array.make (max 1 m) 0 in
    let distances = Array.make (max 1 m) 0 in
    let fill = Array.copy offsets in
    Doc.iter_elements doc (fun e ->
        let le = Doc.level doc e in
        List.iter
          (fun a ->
            let slot = fill.(a) in
            fill.(a) <- slot + 1;
            targets.(slot) <- e;
            distances.(slot) <- le - Doc.level doc a)
          (Doc.ancestors doc e));
    Ok { doc; offsets; targets; distances }
  end

let build_exn ?max_edges doc =
  match build ?max_edges doc with
  | Ok t -> t
  | Error msg -> invalid_arg ("Approxml.build_exn: " ^ msg)

let doc t = t.doc
let edge_count t = t.offsets.(Array.length t.offsets - 1)

let memory_words t =
  Array.length t.offsets + Array.length t.targets + Array.length t.distances

let edges_from t e =
  let out = ref [] in
  for i = t.offsets.(e + 1) - 1 downto t.offsets.(e) do
    out := (t.targets.(i), t.distances.(i)) :: !out
  done;
  !out

let answers t idx q =
  let doc = t.doc in
  let order = Query.descendant_vars q (Query.root q) in
  let best : (Doc.elem, float * int) Hashtbl.t = Hashtbl.create 64 in
  let dist_var = Query.distinguished q in
  (* weight of binding v under anchor: edge score by shortcut distance *)
  let rec go env score edges = function
    | [] ->
      let target = List.assoc dist_var env in
      let avg = if edges = 0 then 1.0 else score /. float_of_int edges in
      (match Hashtbl.find_opt best target with
      | Some (s, _) when s >= avg -> ()
      | _ -> Hashtbl.replace best target (avg, edges))
    | v :: rest -> (
      let node = Query.node q v in
      match Query.parent q v with
      | None ->
        Array.iter
          (fun e ->
            if Semantics.satisfies_node doc idx node e then go ((v, e) :: env) score edges rest)
          (Semantics.candidates doc node)
      | Some (p, axis) ->
        let anc = List.assoc p env in
        List.iter
          (fun (e, d) ->
            if Semantics.satisfies_node doc idx node e then begin
              let edge_score =
                match axis with
                | Query.Child -> 1.0 /. float_of_int d
                | Query.Descendant -> 1.0
              in
              go ((v, e) :: env) (score +. edge_score) (edges + 1) rest
            end)
          (edges_from t anc))
  in
  go [] 0.0 0 order;
  Hashtbl.fold (fun e (s, _) acc -> (e, s) :: acc) best []
  |> List.sort (fun (e1, s1) (e2, s2) ->
         match Float.compare s2 s1 with 0 -> Int.compare e1 e2 | c -> c)
