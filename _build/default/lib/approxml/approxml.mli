(** The data-relaxation baseline (§7; Damiani et al., "The APPROXML
    Tool", EDBT 2002).

    Where FleXPath relaxes the {e query}, APPROXML relaxes the {e
    data}: it materializes the closure of the document graph, inserting
    a shortcut edge between every pair of nodes on the same root-to-leaf
    path, weighted by the distance it skips.  A parent-child query edge
    then matches any shortcut, discounted by its length, so approximate
    answers fall out of ordinary evaluation over the enriched graph.

    The paper dismisses this strategy because "it was shown to quickly
    fail with large databases": the closure carries Θ(n·depth) explicit
    edges, an order of magnitude beyond the document itself, all of it
    materialized before the first query runs.  This module implements
    the strategy faithfully enough to measure exactly that behaviour
    (see the [abl_approxml] benchmark). *)

type t

val build : ?max_edges:int -> Xmldom.Doc.t -> (t, string) result
(** Materializes the closure.  Refuses to proceed past [max_edges]
    shortcut edges (default 20 million), reporting how far it got —
    the failure mode the paper alludes to. *)

val build_exn : ?max_edges:int -> Xmldom.Doc.t -> t

val doc : t -> Xmldom.Doc.t

val edge_count : t -> int
(** Number of materialized shortcut edges. *)

val memory_words : t -> int
(** Approximate heap words held by the closure structures. *)

val edges_from : t -> Xmldom.Doc.elem -> (Xmldom.Doc.elem * int) list
(** Outgoing shortcut edges [(descendant, distance)], distance ≥ 1. *)

val answers :
  t -> Fulltext.Index.t -> Tpq.Query.t -> (Xmldom.Doc.elem * float) list
(** Evaluate a tree pattern query over the enriched graph.  A pc-edge
    matched by a distance-d shortcut contributes 1/d to the answer's
    score (1 when exact); ad-edges contribute 1 whenever some shortcut
    connects the pair.  Per answer the best embedding's average edge
    score is kept; results are sorted best-first.  Exact matches score
    1.0. *)
