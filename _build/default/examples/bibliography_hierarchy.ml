(* The §3.4 "other relaxations" in action: a type hierarchy over element
   tags (article <: publication, etc.) lets tag predicates generalize,
   and a thesaurus widens keywords — both composing with the structural
   relaxations of the core framework.

   Run with:  dune exec examples/bibliography_hierarchy.exe *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc

let el = Xml.element
let txt = Xml.text

let bibliography =
  el "bibliography"
    [
      el "article"
        [
          el "title" [ txt "Streaming XML query evaluation" ];
          el "venue" [ txt "SIGMOD" ];
        ];
      el "book"
        [
          el "title" [ txt "XML stream processing systems" ];
          el "publisher" [ txt "Springer" ];
        ];
      el "thesis"
        [
          el "title" [ txt "Relaxed matching for XML streams" ];
          el "school" [ txt "UBC" ];
        ];
      el "techreport"
        [ el "title" [ txt "XML firehose ingestion" ]; el "institution" [ txt "AT&T" ] ];
      el "webpage" [ el "title" [ txt "cooking recipes" ] ];
    ]

let hierarchy =
  Tpq.Hierarchy.of_list_exn
    [
      ("article", "publication");
      ("book", "publication");
      ("thesis", "publication");
      ("techreport", "publication");
    ]

let thesaurus = Fulltext.Thesaurus.of_list [ [ "stream"; "firehose" ] ]

let query = "//article[./title[.contains(\"xml\" and \"stream\")]]"

let () =
  let env = Flexpath.Env.of_tree ~hierarchy bibliography in
  let q = Tpq.Xpath.parse_exn query in
  Format.printf "Query: %s@.@." query;

  let show title answers =
    Format.printf "--- %s ---@." title;
    List.iteri
      (fun i (a : Flexpath.Answer.t) ->
        Format.printf "%d. <%s> %-38s ss=%.3f ks=%.3f@." (i + 1)
          (Doc.tag_name env.doc a.node)
          (match Doc.children env.doc a.node with
          | t :: _ -> Doc.deep_text env.doc t
          | [] -> "?")
          a.sscore a.kscore)
      answers;
    Format.printf "@."
  in

  (* Strict semantics: only the article. *)
  Format.printf "--- Exact matches ---@.";
  List.iteri
    (fun i node ->
      Format.printf "%d. <%s> %s@." (i + 1) (Doc.tag_name env.doc node)
        (match Doc.children env.doc node with
        | t :: _ -> Doc.deep_text env.doc t
        | [] -> "?"))
    (Flexpath.exact_answers env q);
  Format.printf "@.";

  (* Structural + tag relaxation: book, thesis, techreport surface via
     article -> publication generalization, ranked below the exact
     article. *)
  show "With tag generalization (article < publication)"
    (Flexpath.top_k env ~k:10 q);

  (* Add the thesaurus: "stream" also matches "firehose", so the
     techreport's title satisfies the keywords too. *)
  let q_wide =
    List.fold_left
      (fun q v ->
        Tpq.Query.update_node q v (fun n ->
            { n with contains = List.map (Fulltext.Thesaurus.expand thesaurus) n.contains }))
      q (Tpq.Query.vars q)
  in
  show "Plus thesaurus (stream ~ firehose)" (Flexpath.top_k env ~k:10 q_wide);
  Format.printf "The cooking webpage is never returned: it matches neither the@.";
  Format.printf "structure template, the type hierarchy, nor the keywords.@."
