(* The paper's running example (§1, Figure 1): searching a heterogeneous
   article collection for articles about algorithms on streaming XML.

   Reproduces the containment chain Q1 ⊆ Q2,Q3 ⊆ Q4 ⊆ Q5 ⊆ Q6 on
   generated INEX/SIGMOD-Record-style data, then shows how a single
   flexible evaluation of Q1 surfaces everything the strict semantics
   would miss.

   Run with:  dune exec examples/article_search.exe *)

module Doc = Xmldom.Doc

let figure1 =
  [
    ( "Q1",
      "exact: section with an algorithm and a keyword paragraph",
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]" );
    ( "Q2",
      "contains promoted to the section",
      "//article[./section[./algorithm and ./paragraph and .contains(\"XML\" and \"streaming\")]]" );
    ( "Q3",
      "algorithm may live anywhere in the article",
      "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]" );
    ( "Q4",
      "both relaxations combined",
      "//article[.//algorithm and ./section[./paragraph and .contains(\"XML\" and \"streaming\")]]" );
    ( "Q5",
      "no algorithm requirement",
      "//article[./section[./paragraph and .contains(\"XML\" and \"streaming\")]]" );
    ("Q6", "keywords anywhere in the article", "//article[.contains(\"XML\" and \"streaming\")]");
  ]

let () =
  let doc = Xmark.Articles.doc ~seed:2004 ~count:200 () in
  let env = Flexpath.Env.make doc in
  Format.printf "Collection: %d articles (%d elements)@.@."
    (Array.length (Doc.by_tag_name doc "article"))
    (Doc.size doc);

  (* 1. Strict evaluation of each Figure 1 query: the containment chain. *)
  Format.printf "--- Exact-match answer counts (Figure 1 chain) ---@.";
  List.iter
    (fun (name, desc, xpath) ->
      let q = Tpq.Xpath.parse_exn xpath in
      let n = List.length (Flexpath.exact_answers env q) in
      Format.printf "%s: %3d answers  (%s)@." name n desc)
    figure1;

  (* 2. One flexible evaluation of Q1 subsumes the whole chain. *)
  let _, _, q1_str = List.nth figure1 0 in
  let q1 = Tpq.Xpath.parse_exn q1_str in
  let q6 = Tpq.Xpath.parse_exn (let _, _, s = List.nth figure1 5 in s) in
  let flexible = Flexpath.top_k env ~k:1000 q1 in
  let q6_answers = Flexpath.exact_answers env q6 in
  Format.printf "@.--- Flexible evaluation of Q1 ---@.";
  Format.printf "answers returned: %d (Q6 strict: %d)@." (List.length flexible)
    (List.length q6_answers);

  (* 3. Show the score bands: how many answers at each structural
     score, i.e. how far each had to be relaxed. *)
  let bands = Hashtbl.create 16 in
  List.iter
    (fun (a : Flexpath.Answer.t) ->
      let key = Printf.sprintf "%.4f" a.sscore in
      Hashtbl.replace bands key (1 + Option.value ~default:0 (Hashtbl.find_opt bands key)))
    flexible;
  let sorted =
    Hashtbl.fold (fun k v acc -> (float_of_string k, v) :: acc) bands []
    |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
  in
  Format.printf "@.structural score -> answers:@.";
  List.iter (fun (s, n) -> Format.printf "  %8.4f  %4d@." s n) sorted;

  (* 4. Top 10 with details. *)
  Format.printf "@.--- Top 10 ---@.";
  List.iteri
    (fun i (a : Flexpath.Answer.t) ->
      Format.printf "%2d. %a@." (i + 1) (Flexpath.Answer.pp doc) a)
    (Flexpath.top_k env ~k:10 q1)
