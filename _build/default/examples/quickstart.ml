(* Quickstart: index a document, ask a structural + full-text query, and
   see exact matches ranked above relaxed ones.

   Run with:  dune exec examples/quickstart.exe *)

let document =
  {|<library>
  <book genre="databases">
    <title>Streaming XML processing</title>
    <chapter>
      <heading>Query evaluation</heading>
      <p>Efficient streaming evaluation of XML queries with automata.</p>
    </chapter>
  </book>
  <book genre="databases">
    <title>XML retrieval</title>
    <abstract>Relaxed matching of streaming XML queries against heterogeneous data.</abstract>
  </book>
  <book genre="networking">
    <title>Packet switching</title>
    <chapter>
      <heading>Routing</heading>
      <p>Nothing about markup languages here.</p>
    </chapter>
  </book>
</library>|}

(* The query asks for books with a chapter whose paragraph mentions both
   keywords.  Book 1 matches exactly; book 2 has the keywords only in
   its abstract, so it only matches a relaxation — and is still
   returned, with a lower structural score.  Book 3 is irrelevant and
   never shows up. *)
let query = {|//book[./chapter/p[.contains("streaming" and "xml")]]|}

let () =
  let env =
    match Flexpath.Env.of_string document with
    | Ok env -> env
    | Error e -> failwith (Flexpath.Error.to_string e)
  in
  Format.printf "Query: %s@.@." query;
  match Flexpath.top_k_xpath env ~k:5 query with
  | Error e -> failwith (Flexpath.Error.to_string e)
  | Ok answers ->
    List.iteri
      (fun i (a : Flexpath.Answer.t) ->
        let title =
          match
            Xmldom.Doc.children env.doc a.node
            |> List.find_opt (fun c -> Xmldom.Doc.tag_name env.doc c = "title")
          with
          | Some t -> Xmldom.Doc.deep_text env.doc t
          | None -> "(untitled)"
        in
        Format.printf "%d. %-28s  structural=%.3f keyword=%.3f %s@." (i + 1) title a.sscore
          a.kscore
          (if Flexpath.Answer.is_exact a then "exact match" else "via relaxation"))
      answers;
    Format.printf "@.%d answers — the exact match outranks the relaxed one;@." (List.length answers);
    Format.printf "the networking book is never returned.@."
