examples/bibliography_hierarchy.ml: Flexpath Format Fulltext List Tpq Xmldom
