examples/article_search.mli:
