examples/relaxation_explorer.ml: Array Flexpath Format Hashtbl List Option Relax Stats Sys Tpq Xmark
