examples/quickstart.ml: Flexpath Format List Xmldom
