examples/auction_search.mli:
