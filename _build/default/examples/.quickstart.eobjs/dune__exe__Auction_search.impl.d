examples/auction_search.ml: Array Flexpath Format Joins List Option Tpq Unix Xmark Xmldom
