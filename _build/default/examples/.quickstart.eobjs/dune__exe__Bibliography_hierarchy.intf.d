examples/bibliography_hierarchy.mli:
