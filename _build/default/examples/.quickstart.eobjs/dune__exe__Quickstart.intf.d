examples/quickstart.mli:
