examples/relaxation_explorer.mli:
