examples/article_search.ml: Array Flexpath Float Format Hashtbl List Option Printf Tpq Xmark Xmldom
