(* Searching XMark auction data — the workload of the paper's
   experimental evaluation (§6) — and comparing the three top-K
   algorithms on it.

   Run with:  dune exec examples/auction_search.exe *)

module Doc = Xmldom.Doc

(* The three experiment queries of §6.  Q1 admits one relaxation
   (generalize description/parlist), Q2 adds the text promotion, Q3 adds
   leaf deletions and more generalizations. *)
let queries =
  [
    ("Q1", "//item[./description/parlist]");
    ("Q2", "//item[./description/parlist and ./mailbox/mail/text]");
    ( "Q3",
      "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and \
       ./emph] and ./name and ./incategory]" );
  ]

(* A full-text flavoured variant: items about gold, wherever the word
   appears in the item's prose. *)
let keyword_query = "//item[./description/parlist[.contains(\"gold\")]]"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let doc = Xmark.Auction.doc ~seed:7 ~items:400 () in
  let env = Flexpath.Env.make doc in
  Format.printf "XMark document: %d items, %d elements, ~%.1f MB serialized@.@."
    (Array.length (Doc.by_tag_name doc "item"))
    (Doc.size doc)
    (float_of_int (Doc.serialized_size doc) /. 1e6);

  Format.printf "--- Exact vs flexible answer counts ---@.";
  List.iter
    (fun (name, xpath) ->
      let q = Tpq.Xpath.parse_exn xpath in
      let exact = List.length (Flexpath.exact_answers env q) in
      let flexible = List.length (Flexpath.top_k env ~k:10_000 q) in
      Format.printf "%s: exact=%4d flexible=%4d@." name exact flexible)
    queries;

  Format.printf "@.--- Algorithm comparison on Q3, K=100 ---@.";
  let q3 = Tpq.Xpath.parse_exn (snd (List.nth queries 2)) in
  List.iter
    (fun algorithm ->
      let result, dt = time (fun () -> Flexpath.run_exn ~algorithm env ~k:100 q3) in
      let m = result.Flexpath.Common.metrics in
      Format.printf
        "%-7s %6.1f ms  passes=%d relaxations=%d tuples=%d pruned=%d score-sorted=%d buckets=%d@."
        (Flexpath.algorithm_to_string algorithm)
        (dt *. 1000.0) result.Flexpath.Common.passes result.Flexpath.Common.relaxations_evaluated
        m.Joins.Exec.tuples_produced m.Joins.Exec.tuples_pruned m.Joins.Exec.score_sorted_tuples
        m.Joins.Exec.buckets_touched)
    Flexpath.all_algorithms;

  Format.printf "@.--- Keyword search in context: %s ---@." keyword_query;
  (match Flexpath.top_k_xpath env ~k:5 keyword_query with
  | Error e -> failwith (Flexpath.Error.to_string e)
  | Ok answers ->
    List.iteri
      (fun i (a : Flexpath.Answer.t) ->
        let name =
          Doc.children doc a.node
          |> List.find_opt (fun c -> Doc.tag_name doc c = "name")
          |> Option.map (Doc.deep_text doc)
          |> Option.value ~default:"(unnamed)"
        in
        Format.printf "%d. item %-30s ss=%.3f ks=%.3f@." (i + 1) name a.sscore a.kscore)
      answers);
  Format.printf "@.Items whose description lacks a parlist but mention gold elsewhere@.";
  Format.printf "are still found, ranked after the structurally exact ones.@."
