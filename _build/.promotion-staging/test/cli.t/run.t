The CLI end to end: generate a deterministic document, query it under
each algorithm, show a relaxation chain, and round-trip a saved
environment.

  $ flexpath_cli generate --articles 5 --seed 3 -o articles.xml
  wrote 3106 bytes to articles.xml

  $ flexpath_cli stats --file articles.xml | head -2
  stats: 61 elements, 10 tags, 11 pc pairs, 25 ad entries
  elements: 61

Exact matches first, relaxed answers after, same answers per algorithm:

  $ flexpath_cli query --file articles.xml -k 3 --algo dpo '//article[.contains("xml" and "streaming")]' > dpo.out
  $ flexpath_cli query --file articles.xml -k 3 --algo sso '//article[.contains("xml" and "streaming")]' > sso.out
  $ flexpath_cli query --file articles.xml -k 3 --algo hybrid '//article[.contains("xml" and "streaming")]' > hybrid.out
  $ diff dpo.out sso.out
  $ diff sso.out hybrid.out
  $ head -1 dpo.out
   1. collection[1]/article[2]  ss=0.0000 ks=0.6203  exact

The relaxation chain starts at the original query:

  $ flexpath_cli relax --file articles.xml '//article[./section/paragraph]' | head -2
   0. score=2.0000 penalty=0.0000  (original)
      //article[./section[./paragraph]]

Weights rescale scores:

  $ flexpath_cli query --file articles.xml -k 1 --weights structural=2 '//article[./section/paragraph]' | head -1
   1. collection[1]/article[2]  ss=4.0000 ks=0.0000  exact

Saved environments answer the same queries:

  $ flexpath_cli index --file articles.xml -o articles.env
  indexed 61 elements into articles.env
  $ flexpath_cli query --env articles.env -k 3 '//article[.contains("xml" and "streaming")]' > env.out
  $ diff dpo.out env.out

Errors are reported, not crashes, with distinct exit codes: 2 for
parse errors (query or document), 1 for I/O, configuration and
internal-limit errors.

  $ flexpath_cli query --file articles.xml '//['
  query error: at offset 2: expected a name
  [2]
  $ flexpath_cli query --file missing.xml '//a'
  error: missing.xml: No such file or directory
  [1]
  $ printf '<a>\n  <b></a>' > broken.xml
  $ flexpath_cli query --file broken.xml '//a'
  error: broken.xml: line 2, column 9: mismatched closing tag: expected </b>, got </a>
  [2]
  $ flexpath_cli query --file articles.xml --weights nonsense '//a'
  error: bad weights: expected key=value, got "nonsense"
  [1]
  $ flexpath_cli query --file articles.xml '//a/b/c/d/e/f/g/h/i/j/k/l'
  error: capacity exceeded: scored predicates in the query closure (77 > limit 62)
  [1]

A budget-exceeded query still prints the best-effort answers it
collected, then reports the trip on stderr and exits 3:

  $ flexpath_cli query --file articles.xml -k 5 --algo dpo --step-budget 1 '//article[./section[./algorithm and ./paragraph]]'
   1. collection[1]/article[3]  ss=3.0000 ks=0.0000  exact
   2. collection[1]/article[4]  ss=3.0000 ks=0.0000  exact
  budget exceeded (step budget): 2 partial answers shown; unreported answers score at most 2.0000
  [3]
  $ flexpath_cli query --file articles.xml -k 3 --timeout-ms 0 '//article[./section/paragraph]'
  budget exceeded (deadline): 0 partial answers shown; unreported answers score at most 2.0000
  [3]

Injected faults surface as typed errors end to end:

  $ FLEXPATH_FAILPOINTS=exec.run flexpath_cli query --file articles.xml '//article[./section/paragraph]'
  error: injected fault at exec.run
  [1]
  $ FLEXPATH_FAILPOINTS=index.build flexpath_cli stats --file articles.xml
  error: injected fault at index.build
  [1]

Snapshot integrity: --verify recomputes every checksum and reports
per-section status, exit 0 when intact:

  $ flexpath_cli index --verify articles.env
  articles.env:
  format v2, 4 sections
    document           offset 69           3044 bytes  ok
    index              offset 3113         3574 bytes  ok
    statistics         offset 6687         1566 bytes  ok
    hierarchy          offset 8253           22 bytes  ok
    footer ok
  intact

Corrupted snapshots are typed errors with exit code 4, for both query
and verify:

  $ head -c 100 articles.env > trunc.env
  $ flexpath_cli query --env trunc.env -k 3 '//article' 2>&1
  error: trunc.env: truncated snapshot (document cut short)
  [4]
  $ flexpath_cli index --verify trunc.env
  trunc.env:
  format v2, 4 sections
    document           offset 69           3044 bytes  CORRUPT
    index              offset 3113         3574 bytes  CORRUPT
    statistics         offset 6687         1566 bytes  CORRUPT
    hierarchy          offset 8253           22 bytes  CORRUPT
    footer CORRUPT
  corrupt, not recoverable
  [4]
  $ cp articles.env garbage.env && printf 'junk' >> garbage.env
  $ flexpath_cli query --env garbage.env -k 3 '//article'
  error: garbage.env: 4 bytes of trailing garbage after the snapshot footer
  [4]

Damage confined to a derived section degrades gracefully: the query
warns, rebuilds from the document section, and answers identically.
Flip the last payload byte (inside the hierarchy section, just before
the 8-byte footer):

  $ cp articles.env flipped.env
  $ SIZE=$(wc -c < articles.env)
  $ printf '\377' | dd of=flipped.env bs=1 seek=$((SIZE - 9)) conv=notrunc 2>/dev/null
  $ flexpath_cli query --env flipped.env -k 3 '//article[.contains("xml" and "streaming")]' > flipped.out
  warning: flipped.env: corrupt snapshot recovered; rebuilt from the document section: hierarchy
  $ diff dpo.out flipped.out
  $ flexpath_cli index --verify flipped.env
  flipped.env:
  format v2, 4 sections
    document           offset 69           3044 bytes  ok
    index              offset 3113         3574 bytes  ok
    statistics         offset 6687         1566 bytes  ok
    hierarchy          offset 8253           22 bytes  CORRUPT
    footer CORRUPT
  corrupt, recoverable (document section intact; derived sections will be rebuilt on load)
  [4]

A fault injected at any storage failpoint during save surfaces as a
typed error and leaves the existing snapshot byte-for-byte intact:

  $ FLEXPATH_FAILPOINTS=storage_rename flexpath_cli index --file articles.xml -o articles.env
  error: injected fault at storage_rename
  [1]
  $ FLEXPATH_FAILPOINTS=storage_write flexpath_cli index --file articles.xml -o articles.env
  error: injected fault at storage_write
  [1]
  $ ls *.tmp.* 2>/dev/null
  [2]
  $ flexpath_cli index --verify articles.env
  articles.env:
  format v2, 4 sections
    document           offset 69           3044 bytes  ok
    index              offset 3113         3574 bytes  ok
    statistics         offset 6687         1566 bytes  ok
    hierarchy          offset 8253           22 bytes  ok
    footer ok
  intact

Usage errors for the index subcommand:

  $ flexpath_cli index --file articles.xml
  error: pass -o PATH to build a snapshot or --verify PATH to check one
  [1]
  $ flexpath_cli index --file articles.xml -o a.env --verify b.env
  error: pass either --verify or -o, not both
  [1]
