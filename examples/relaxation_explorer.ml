(* Exploring the relaxation space of a query: the four operators of
   §3.5, the penalty-ordered chain DPO/SSO walk, and the size of the
   full space.

   Run with:  dune exec examples/relaxation_explorer.exe [XPATH] *)

let default_query =
  "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"

let () =
  let query = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_query in
  let doc = Xmark.Articles.doc ~seed:99 ~count:120 () in
  let env = Flexpath.Env.make doc in
  let q =
    match Tpq.Xpath.parse query with
    | Ok q -> q
    | Error e -> failwith ("bad query: " ^ Tpq.Xpath.error_to_string e)
  in
  Format.printf "Query: %s@.@." (Tpq.Xpath.to_string q);
  Format.printf "%s@." (Tpq.Query.to_string q);

  (* The operators applicable right now. *)
  Format.printf "--- Applicable operators ---@.";
  List.iter (fun op -> Format.printf "  %s@." (Relax.Op.to_string op)) (Relax.Op.applicable q);

  (* The closure (Figure 4 of the paper). *)
  let penv = Flexpath.Env.penalty_env env q in
  Format.printf "@.--- Closure with penalties ---@.";
  List.iter
    (fun p ->
      let pen = Relax.Penalty.predicate_penalty penv p in
      if Tpq.Pred.is_structural p || Tpq.Pred.is_contains p then
        Format.printf "  %-50s penalty %.4f@." (Tpq.Pred.to_string p) pen)
    (Relax.Penalty.closure penv);

  (* The greedy penalty-ordered chain with estimated and actual
     cardinalities. *)
  Format.printf "@.--- Penalty-ordered relaxation chain ---@.";
  Format.printf "%-4s %-9s %-9s %-8s %s@." "step" "score" "est.card" "actual" "query";
  List.iteri
    (fun i (entry : Relax.Space.entry) ->
      let est = Stats.estimate_answers env.Flexpath.Env.stats entry.query in
      let actual = List.length (Flexpath.exact_answers env entry.query) in
      Format.printf "%-4d %-9.4f %-9.1f %-8d %s@." i entry.score est actual
        (Tpq.Xpath.to_string entry.query))
    (Relax.Space.sequence ~max_steps:16 penv);

  (* The whole space (deduplicated up to isomorphism). *)
  let space = Relax.Space.enumerate ~max_queries:500 q in
  Format.printf "@.--- Full relaxation space ---@.";
  Format.printf "distinct relaxations (capped at 500): %d@." (List.length space);
  let by_ops = Hashtbl.create 16 in
  List.iter
    (fun (_, ops) ->
      let n = List.length ops in
      Hashtbl.replace by_ops n (1 + Option.value ~default:0 (Hashtbl.find_opt by_ops n)))
    space;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_ops []
  |> List.sort compare
  |> List.iter (fun (steps, count) -> Format.printf "  %d ops: %d queries@." steps count)
