(* Benchmark harness reproducing the experimental evaluation of
   FleXPath (SIGMOD 2004), §6 — one table per figure, plus ablations
   and Bechamel micro-benchmarks of the substrates.

   Usage:
     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- fig9 fig13  # selected figures
     dune exec bench/main.exe -- quick       # reduced sizes (CI-speed)
     dune exec bench/main.exe -- micro       # Bechamel micro-benches only

   Size scaling: the paper runs XMark documents of 1-100 MB on a 2 GHz
   P4.  We map one "paper megabyte" to 100 XMark items (roughly a tenth
   of the byte size), which preserves the structural ratios the
   algorithms are sensitive to — number of items, relaxation
   opportunities per item, answer counts — while keeping a full run in
   minutes.  Absolute times are not comparable to the paper; the
   reported series shapes (who wins, how gaps grow with K, document
   size and number of relaxations) are. *)

module Doc = Xmldom.Doc
module Xpath = Tpq.Xpath
module Env = Flexpath.Env
module Ranking = Flexpath.Ranking
module Failpoint = Flexpath.Failpoint

let items_per_paper_mb = 200

(* The three queries of §6. *)
let q1_str = "//item[./description/parlist]"
let q2_str = "//item[./description/parlist and ./mailbox/mail/text]"

let q3_str =
  "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and \
   ./emph] and ./name and ./incategory]"

let queries = [ ("Q1", q1_str); ("Q2", q2_str); ("Q3", q3_str) ]

(* ------------------------------------------------------------------ *)
(* Environment cache: one indexed document per size. *)

let env_cache : (int, Env.t) Hashtbl.t = Hashtbl.create 8

let env_for_mb mb =
  let items = max 10 (int_of_float (mb *. float_of_int items_per_paper_mb)) in
  match Hashtbl.find_opt env_cache items with
  | Some env -> env
  | None ->
    let t0 = Unix.gettimeofday () in
    let doc = Xmark.Auction.doc ~seed:2004 ~items () in
    let env = Env.make doc in
    Printf.printf "  [setup] %gMB: %d items, %d elements, built in %.1fs\n%!" mb items
      (Doc.size doc)
      (Unix.gettimeofday () -. t0);
    Hashtbl.add env_cache items env;
    env

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Median of three timed runs (after the first, which also serves as
   warm-up) — the algorithm comparisons are sensitive to GC state. *)
let time_median f =
  let r, t1 = time f in
  let _, t2 = time f in
  let _, t3 = time f in
  let sorted = List.sort Float.compare [ t1; t2; t3 ] in
  (r, List.nth sorted 1)

let run_algo env ~algorithm ~k q =
  time_median (fun () -> Flexpath.run_exn ~algorithm ~scheme:Ranking.Structure_first env ~k q)

(* ------------------------------------------------------------------ *)
(* Table printing *)

let header title caption columns =
  Printf.printf "\n=== %s ===\n%s\n%!" title caption;
  Printf.printf "%-14s" "x";
  List.iter (fun c -> Printf.printf "%14s" c) columns;
  print_newline ()

let row label cells =
  Printf.printf "%-14s" label;
  List.iter (fun c -> Printf.printf "%14s" c) cells;
  print_newline ();
  flush stdout

let ms v = Printf.sprintf "%.1f" v

(* ------------------------------------------------------------------ *)
(* Figures *)

(* Fig. 9: execution time vs number of relaxations (queries Q1-Q3),
   1MB document, K = 50, DPO vs SSO. *)
let fig9 ~quick () =
  let env = env_for_mb (if quick then 0.5 else 1.0) in
  let k = 50 in
  header "Figure 9" "Varying number of relaxations (1MB, K=50): DPO vs SSO, time in ms"
    [ "relaxations"; "DPO"; "SSO" ];
  List.iter
    (fun (name, qs) ->
      let q = Xpath.parse_exn qs in
      let rd, td = run_algo env ~algorithm:Flexpath.DPO ~k q in
      let _, ts = run_algo env ~algorithm:Flexpath.SSO ~k q in
      row name [ string_of_int rd.Flexpath.Common.relaxations_evaluated; ms td; ms ts ])
    queries

(* Fig. 10: execution time vs K, 10MB document, query Q3, DPO vs SSO. *)
let fig10 ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let q = Xpath.parse_exn q3_str in
  header "Figure 10" "Varying K (10MB, Q3): DPO vs SSO, time in ms" [ "DPO"; "SSO" ];
  List.iter
    (fun k ->
      let _, td = run_algo env ~algorithm:Flexpath.DPO ~k q in
      let _, ts = run_algo env ~algorithm:Flexpath.SSO ~k q in
      row (string_of_int k) [ ms td; ms ts ])
    (if quick then [ 50; 200; 600 ] else [ 50; 100; 200; 300; 400; 500; 600 ])

(* Fig. 11 / 12: execution time vs document size, query Q2,
   K = 12 and K = 500, DPO vs SSO. *)
let fig_docsize ~quick ~k name =
  let q = Xpath.parse_exn q2_str in
  header name
    (Printf.sprintf "Varying document size (Q2, K=%d): DPO vs SSO, time in ms" k)
    [ "DPO"; "SSO" ];
  List.iter
    (fun mb ->
      let env = env_for_mb mb in
      let _, td = run_algo env ~algorithm:Flexpath.DPO ~k q in
      let _, ts = run_algo env ~algorithm:Flexpath.SSO ~k q in
      row (Printf.sprintf "%gMB" mb) [ ms td; ms ts ])
    (if quick then [ 1.0; 5.0 ] else [ 1.0; 10.0; 25.0; 50.0; 100.0 ])

let fig11 ~quick () = fig_docsize ~quick ~k:12 "Figure 11"
let fig12 ~quick () = fig_docsize ~quick ~k:500 "Figure 12"

(* Fig. 13: varying number of relaxations, 10MB, K = 500,
   SSO vs Hybrid. *)
let fig13 ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let k = 500 in
  header "Figure 13" "Varying number of relaxations (10MB, K=500): SSO vs Hybrid, time in ms"
    [ "relaxations"; "SSO"; "Hybrid" ];
  List.iter
    (fun (name, qs) ->
      let q = Xpath.parse_exn qs in
      let rs, ts = run_algo env ~algorithm:Flexpath.SSO ~k q in
      let _, th = run_algo env ~algorithm:Flexpath.Hybrid ~k q in
      row name [ string_of_int rs.Flexpath.Common.relaxations_evaluated; ms ts; ms th ])
    queries

(* Fig. 14: varying document size, Q3, K = 500, SSO vs Hybrid. *)
let fig14 ~quick () =
  let q = Xpath.parse_exn q3_str in
  header "Figure 14" "Varying document size (Q3, K=500): SSO vs Hybrid, time in ms"
    [ "SSO"; "Hybrid" ];
  List.iter
    (fun mb ->
      let env = env_for_mb mb in
      let _, ts = run_algo env ~algorithm:Flexpath.SSO ~k:500 q in
      let _, th = run_algo env ~algorithm:Flexpath.Hybrid ~k:500 q in
      row (Printf.sprintf "%gMB" mb) [ ms ts; ms th ])
    (if quick then [ 1.0; 5.0 ] else [ 1.0; 10.0; 25.0; 50.0; 100.0 ])

(* Fig. 15 / 16: varying K, query Q3, SSO vs Hybrid, on 10MB and 100MB. *)
let fig_k_sso_hybrid ~quick ~mb name =
  let env = env_for_mb mb in
  let q = Xpath.parse_exn q3_str in
  header name
    (Printf.sprintf "Varying K (%gMB, Q3): SSO vs Hybrid, time in ms" mb)
    [ "SSO"; "Hybrid" ];
  List.iter
    (fun k ->
      let _, ts = run_algo env ~algorithm:Flexpath.SSO ~k q in
      let _, th = run_algo env ~algorithm:Flexpath.Hybrid ~k q in
      row (string_of_int k) [ ms ts; ms th ])
    (if quick then [ 50; 600 ] else [ 50; 100; 200; 300; 400; 500; 600 ])

let fig15 ~quick () = fig_k_sso_hybrid ~quick ~mb:(if quick then 2.0 else 10.0) "Figure 15"
let fig16 ~quick () = fig_k_sso_hybrid ~quick ~mb:(if quick then 5.0 else 100.0) "Figure 16"

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out. *)

let deep_plan env q =
  let penv = Env.penalty_env env q in
  let chain = Relax.Space.sequence ~max_steps:32 penv in
  let deep = List.nth chain (List.length chain - 1) in
  (penv, Joins.Encoded.of_ops_exn q deep.Relax.Space.ops)

(* Bucketization (Hybrid) vs score re-sorting (SSO) vs neither, at
   fixed relaxation depth: isolates the §5.2.2 "fundamental tension"
   between node-id order and score order. *)
let abl_bucketize ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let q = Xpath.parse_exn q3_str in
  header "Ablation: bucketization"
    "Same fully-relaxed plan, K=500: score re-sorting vs buckets vs neither; time in ms"
    [ "time"; "sorted-tuples" ];
  let run name sort_on_score bucketize prune =
    let penv, enc = deep_plan env q in
    let metrics = Joins.Exec.fresh_metrics () in
    let strategy =
      {
        Joins.Exec.sort_on_score;
        bucketize;
        prune_k = (if prune then Some 500 else None);
        prune_slack = 0.0;
      }
    in
    let _, t = time (fun () -> Joins.Exec.run ~metrics (Env.exec_env env penv) enc strategy) in
    row name [ ms t; string_of_int metrics.Joins.Exec.score_sorted_tuples ]
  in
  run "sso-style" true false true;
  run "hybrid-style" false true true;
  run "no-order" false false true;
  run "no-pruning" false false false

(* Threshold + maxScoreGrowth pruning on/off for SSO. *)
let abl_pruning ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let q = Xpath.parse_exn q3_str in
  header "Ablation: pruning" "SSO plan with and without threshold/maxScoreGrowth pruning (K=500)"
    [ "time"; "tuples"; "pruned" ];
  let run name prune =
    let penv, enc = deep_plan env q in
    let metrics = Joins.Exec.fresh_metrics () in
    let strategy =
      {
        Joins.Exec.sort_on_score = true;
        bucketize = false;
        prune_k = (if prune then Some 500 else None);
        prune_slack = 0.0;
      }
    in
    let _, t = time (fun () -> Joins.Exec.run ~metrics (Env.exec_env env penv) enc strategy) in
    row name
      [
        ms t;
        string_of_int metrics.Joins.Exec.tuples_produced;
        string_of_int metrics.Joins.Exec.tuples_pruned;
      ]
  in
  run "with-pruning" true;
  run "without" false

(* Selectivity estimation: SSO's static cut vs a purely restart-driven
   walk of the chain (what running without an estimator degrades to). *)
let abl_estimator ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let q = Xpath.parse_exn q2_str in
  header "Ablation: estimator"
    "SSO with estimator-chosen cut vs walking the chain pass by pass (K=500)"
    [ "time"; "passes"; "restarts" ];
  let r, t = run_algo env ~algorithm:Flexpath.SSO ~k:500 q in
  row "with-estimator"
    [ ms t; string_of_int r.Flexpath.Common.passes; string_of_int r.Flexpath.Common.restarts ];
  let r', t' = run_algo env ~algorithm:Flexpath.DPO ~k:500 q in
  row "pass-by-pass"
    [ ms t'; string_of_int r'.Flexpath.Common.passes; string_of_int r'.Flexpath.Common.restarts ]

(* Ranking schemes (§4.3 / §5.1): structure-first admits the strongest
   pruning and earliest cuts; Combined keeps a keyword slack; keyword-
   first must encode the whole chain and cannot prune on structure. *)
let abl_schemes ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let q = Xpath.parse_exn q2_str in
  header "Ablation: ranking schemes"
    "Hybrid, Q2, K=100 under the three ranking schemes; time in ms"
    [ "time"; "relaxations"; "pruned" ];
  List.iter
    (fun scheme ->
      let r, t =
        time_median (fun () -> Flexpath.run_exn ~algorithm:Flexpath.Hybrid ~scheme env ~k:100 q)
      in
      row (Ranking.to_string scheme)
        [
          ms t;
          string_of_int r.Flexpath.Common.relaxations_evaluated;
          string_of_int r.Flexpath.Common.metrics.Joins.Exec.tuples_pruned;
        ])
    Ranking.all

(* Resource governance: what a budget costs when it never trips
   (cancellation-polling overhead) and what it buys when it does
   (bounded latency against best-effort answer counts). *)
let abl_governance ~quick () =
  let env = env_for_mb (if quick then 2.0 else 10.0) in
  let q = Xpath.parse_exn q3_str in
  let k = 500 in
  header "Ablation: resource governance"
    "DPO, Q3, K=500 under shrinking budgets: latency vs answers kept; time in ms"
    [ "time"; "answers"; "passes"; "state"; "bound" ];
  let run name budget =
    let r, t =
      time_median (fun () -> Flexpath.run_exn ~algorithm:Flexpath.DPO ?budget env ~k q)
    in
    let state, bound =
      match r.Flexpath.Common.completeness with
      | Flexpath.Common.Complete -> ("complete", "-")
      | Flexpath.Common.Truncated { reason; score_bound } ->
        (Flexpath.Guard.reason_to_string reason, Printf.sprintf "%.3f" score_bound)
    in
    row name
      [
        ms t;
        string_of_int (List.length r.Flexpath.Common.answers);
        string_of_int r.Flexpath.Common.passes;
        state;
        bound;
      ]
  in
  run "unlimited" None;
  run "ungoverned-poll" (Some (Flexpath.Guard.budget ~tuple_budget:max_int ()));
  run "steps=2" (Some (Flexpath.Guard.budget ~step_budget:2 ()));
  run "tuples=50k" (Some (Flexpath.Guard.budget ~tuple_budget:50_000 ()));
  run "tuples=5k" (Some (Flexpath.Guard.budget ~tuple_budget:5_000 ()));
  run "deadline=5ms" (Some (Flexpath.Guard.budget ~deadline_ms:5.0 ()))

(* Snapshot storage: what the checksummed sectioned format costs to
   write, load and verify as documents grow, and what recovery costs
   when a derived section is damaged and must be rebuilt from the
   document section. *)
let abl_snapshot ~quick () =
  header "Ablation: snapshot storage"
    "Checksummed snapshot save/load/verify, and recovery from a damaged index section; time in ms"
    [ "bytes"; "save"; "load"; "verify"; "recover" ];
  let fail e = failwith (Flexpath.Error.to_string e) in
  List.iter
    (fun mb ->
      let env = env_for_mb mb in
      let path = Filename.temp_file "flexpath_bench" ".env" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let _, save_ms =
            time_median (fun () ->
                match Flexpath.Storage.save env path with Ok () -> () | Error e -> fail e)
          in
          let bytes = (Unix.stat path).Unix.st_size in
          let _, load_ms =
            time_median (fun () ->
                match Flexpath.Storage.load path with
                | Ok (_, Flexpath.Storage.Intact) -> ()
                | Ok _ -> failwith "expected an intact load"
                | Error e -> fail e)
          in
          let _, verify_ms =
            time_median (fun () ->
                match Flexpath.Storage.verify path with Ok _ -> () | Error e -> fail e)
          in
          (* Flip one byte in the middle of the index section: load must
             detect the checksum mismatch and re-index the document. *)
          let report =
            match Flexpath.Storage.verify path with Ok r -> r | Error e -> fail e
          in
          let s =
            List.find (fun s -> s.Flexpath.Storage.name = "index") report.Flexpath.Storage.sections
          in
          let data =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
          in
          let i = s.Flexpath.Storage.offset + (s.Flexpath.Storage.bytes / 2) in
          Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 1));
          let oc = open_out_bin path in
          output_bytes oc data;
          close_out oc;
          let _, recover_ms =
            time_median (fun () ->
                match Flexpath.Storage.load path with
                | Ok (_, Flexpath.Storage.Recovered _) -> ()
                | Ok _ -> failwith "expected a recovery"
                | Error e -> fail e)
          in
          row
            (Printf.sprintf "%gMB" mb)
            [ string_of_int bytes; ms save_ms; ms load_ms; ms verify_ms; ms recover_ms ]))
    (if quick then [ 0.5; 2.0 ] else [ 1.0; 10.0; 25.0 ])

(* Data relaxation (APPROXML, §7) vs query relaxation (SSO): the third
   evaluation strategy the paper rejects because it "quickly fails with
   large databases".  We measure the materialized closure and the
   evaluation cost as documents grow. *)
let abl_approxml ~quick () =
  let q = Xpath.parse_exn "//item[./description/parlist]" in
  header "Ablation: data relaxation (APPROXML)"
    "Materialized closure size and query time vs SSO query relaxation (Q1, K=100)"
    [ "closure-edges"; "build-ms"; "eval-ms"; "SSO-ms" ];
  List.iter
    (fun mb ->
      let env = env_for_mb mb in
      let t, build_ms = time (fun () -> Approxml.build env.Env.doc) in
      (match t with
      | Error msg -> row (Printf.sprintf "%gMB" mb) [ "-"; "-"; msg; "-" ]
      | Ok t ->
        let _, eval_ms = time_median (fun () -> Approxml.answers t env.Env.index q) in
        let _, sso_ms = run_algo env ~algorithm:Flexpath.SSO ~k:100 q in
        row (Printf.sprintf "%gMB" mb)
          [ string_of_int (Approxml.edge_count t); ms build_ms; ms eval_ms; ms sso_ms ]))
    (if quick then [ 1.0; 5.0 ] else [ 1.0; 10.0; 25.0; 50.0; 100.0 ])

(* The query server (§4e): what a resident environment buys over
   rebuilding it per query, and how the admission queue depth shapes
   throughput and load shedding when more clients connect than there
   are workers. *)
let abl_serve ~quick () =
  let module Server = Flexpath_server.Server in
  let module Protocol = Flexpath_server.Protocol in
  let mb = if quick then 1.0 else 5.0 in
  let env = env_for_mb mb in
  let items = max 10 (int_of_float (mb *. float_of_int items_per_paper_mb)) in
  let request = Printf.sprintf "QUERY k=50 %s" q1_str in
  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    (fd, Unix.in_channel_of_descr fd)
  in
  let send fd line =
    let b = Bytes.of_string (line ^ "\n") in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done
  in
  let recv ic =
    let read_line () = match input_line ic with l -> Some l | exception _ -> None in
    let read_bytes n =
      let b = Bytes.create n in
      match really_input ic b 0 n with
      | () -> Some (Bytes.to_string b)
      | exception _ -> None
    in
    Protocol.read_response ~read_line ~read_bytes
  in
  let with_server cfg f =
    match Server.create cfg ~env with
    | Error e -> failwith (Flexpath.Error.to_string e)
    | Ok t ->
      let d = Domain.spawn (fun () -> Server.serve t) in
      Fun.protect
        ~finally:(fun () ->
          Server.stop t;
          Domain.join d)
        (fun () -> f (Server.port t))
  in
  header "Ablation: query server"
    (Printf.sprintf
       "Resident vs rebuild-per-query latency (Q1, K=50, %gMB), then 16 reconnecting clients \
        against the admission queue; time in ms"
       mb)
    [ "time"; "served"; "rejected"; "req/s" ];
  (* Cold: what every query pays without a server — rebuild the
     environment, then answer. *)
  let q = Xpath.parse_exn q1_str in
  let doc = Xmark.Auction.doc ~seed:2004 ~items () in
  let _, cold_ms =
    time_median (fun () ->
        let cold_env = Env.make doc in
        Flexpath.run_exn cold_env ~k:50 q)
  in
  row "cold" [ ms cold_ms; "1"; "-"; "-" ];
  (* Resident: one held connection; the time includes the loopback
     round-trip and response formatting, i.e. what a client sees. *)
  with_server Server.default_config (fun port ->
      let fd, ic = connect port in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let _, warm_ms =
            time_median (fun () ->
                send fd request;
                match recv ic with
                | Some (Protocol.Ok_, _) -> ()
                | _ -> failwith "resident query failed")
          in
          row "resident" [ ms warm_ms; "1"; "-"; "-" ]));
  (* Throughput: one connection per request and more clients than
     workers, so the admission queue is the contended resource.
     Shallow queues shed load as OVERLOADED; deep queues serve all. *)
  let clients = 16 and per_client = if quick then 15 else 40 in
  List.iter
    (fun depth ->
      let cfg = { Server.default_config with Server.queue_depth = depth } in
      with_server cfg (fun port ->
          let served = Atomic.make 0 and rejected = Atomic.make 0 in
          let client () =
            for _ = 1 to per_client do
              match connect port with
              | exception Unix.Unix_error _ -> Atomic.incr rejected
              | fd, ic ->
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () ->
                    match
                      send fd request;
                      recv ic
                    with
                    | Some ((Protocol.Ok_ | Protocol.Partial), _) -> Atomic.incr served
                    | Some _ | None | (exception _) -> Atomic.incr rejected)
            done
          in
          let _, wall_ms =
            time (fun () ->
                let ds = List.init clients (fun _ -> Domain.spawn client) in
                List.iter Domain.join ds)
          in
          let served = Atomic.get served in
          row
            (Printf.sprintf "queue=%d" depth)
            [
              ms wall_ms;
              string_of_int served;
              string_of_int (Atomic.get rejected);
              Printf.sprintf "%.0f" (float_of_int served /. (wall_ms /. 1000.0));
            ]))
    [ 1; 8; 64 ]

(* The query cache (DESIGN.md §4f): what the answer tier buys on a
   repeated shape in-process, then through the server under a
   Zipf-skewed query mix at several admission-queue depths — realistic
   workloads repeat a few shapes often, so the hit rate and throughput
   are the interesting outputs. *)
let abl_cache ~quick () =
  let module Server = Flexpath_server.Server in
  let module Protocol = Flexpath_server.Protocol in
  let mb = if quick then 1.0 else 5.0 in
  let env = env_for_mb mb in
  let q = Xpath.parse_exn q1_str in
  header "Ablation: query cache"
    (Printf.sprintf
       "Cold vs answer-tier hit (Q1, K=50, %gMB), then 8 clients on a Zipf query mix; time in ms"
       mb)
    [ "time"; "served"; "hit-rate"; "req/s" ];
  (* Cold: every run pays chain construction, join-plan compilation and
     the joins themselves.  Warm: the same query served from the answer
     tier. *)
  let _, cold_ms = time_median (fun () -> Flexpath.run_exn env ~k:50 q) in
  row "cold" [ ms cold_ms; "1"; "-"; "-" ];
  let cache = Flexpath.Qcache.create () in
  let _ = Flexpath.run_exn ~cache env ~k:50 q in
  let _, warm_ms = time_median (fun () -> Flexpath.run_exn ~cache env ~k:50 q) in
  row "warm" [ Printf.sprintf "%.3f" warm_ms; "1"; "-"; "-" ];
  row "speedup" [ Printf.sprintf "%.0fx" (cold_ms /. Float.max warm_ms 1e-6); "-"; "-"; "-" ];
  (* The server side: a Zipf mix (weight 1/rank over eight query lines)
     issued by more clients than workers.  Every request pays the
     loopback round-trip; the cache's contribution shows up as
     throughput and as the hit rate reported by STATS. *)
  let pool =
    [|
      Printf.sprintf "QUERY k=50 %s" q1_str;
      Printf.sprintf "QUERY k=20 %s" q1_str;
      Printf.sprintf "QUERY k=50 %s" q2_str;
      Printf.sprintf "QUERY k=20 %s" q2_str;
      Printf.sprintf "QUERY k=50 %s" q3_str;
      Printf.sprintf "QUERY k=20 %s" q3_str;
      Printf.sprintf "QUERY k=10 scheme=combined %s" q1_str;
      Printf.sprintf "QUERY k=10 algo=dpo %s" q2_str;
    |]
  in
  let n = Array.length pool in
  let weights = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  (* A per-client 48-bit LCG (the drand48 constants) keeps the mix
     deterministic across runs. *)
  let next_state s = ((s * 25214903917) + 11) land ((1 lsl 48) - 1) in
  let pick s =
    let u = float_of_int (s lsr 16) /. float_of_int (1 lsl 32) *. total in
    let rec go i acc =
      if i = n - 1 then i
      else
        let acc = acc +. weights.(i) in
        if u < acc then i else go (i + 1) acc
    in
    go 0 0.0
  in
  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    (fd, Unix.in_channel_of_descr fd)
  in
  let send fd line =
    let b = Bytes.of_string (line ^ "\n") in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done
  in
  let recv ic =
    let read_line () = match input_line ic with l -> Some l | exception _ -> None in
    let read_bytes n =
      let b = Bytes.create n in
      match really_input ic b 0 n with
      | () -> Some (Bytes.to_string b)
      | exception _ -> None
    in
    Protocol.read_response ~read_line ~read_bytes
  in
  let with_server cfg f =
    match Server.create cfg ~env with
    | Error e -> failwith (Flexpath.Error.to_string e)
    | Ok t ->
      let d = Domain.spawn (fun () -> Server.serve t) in
      Fun.protect
        ~finally:(fun () ->
          Server.stop t;
          Domain.join d)
        (fun () -> f (Server.port t))
  in
  let stat_int body name =
    let prefix = name ^ ": " in
    String.split_on_char '\n' body
    |> List.find_map (fun line ->
           if
             String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
           then
             int_of_string_opt
               (String.sub line (String.length prefix) (String.length line - String.length prefix))
           else None)
    |> Option.value ~default:0
  in
  let clients = 8 and per_client = if quick then 20 else 60 in
  List.iter
    (fun depth ->
      let cfg = { Server.default_config with Server.queue_depth = depth } in
      with_server cfg (fun port ->
          let served = Atomic.make 0 in
          let client id () =
            let fd, ic = connect port in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let s = ref (next_state (0x9E3779B9 * (id + 1))) in
                for _ = 1 to per_client do
                  s := next_state !s;
                  match
                    send fd pool.(pick !s);
                    recv ic
                  with
                  | Some ((Protocol.Ok_ | Protocol.Partial), _) -> Atomic.incr served
                  | Some _ | None | (exception _) -> ()
                done)
          in
          let _, wall_ms =
            time (fun () ->
                let ds = List.init clients (fun id -> Domain.spawn (client id)) in
                List.iter Domain.join ds)
          in
          let hits, misses =
            let fd, ic = connect port in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                send fd "STATS";
                match recv ic with
                | Some (Protocol.Ok_, body) ->
                  (stat_int body "cache_hits", stat_int body "cache_misses")
                | _ -> (0, 0))
          in
          let served = Atomic.get served in
          row
            (Printf.sprintf "queue=%d" depth)
            [
              ms wall_ms;
              string_of_int served;
              Printf.sprintf "%.0f%%" (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
              Printf.sprintf "%.0f" (float_of_int served /. (wall_ms /. 1000.0));
            ]))
    [ 1; 8; 64 ]

(* Worker supervision (DESIGN.md §4g): what heartbeat-driven loss
   recovery buys under injected wedges.  Retrying clients issue a fixed
   workload while a fraction of requests wedge their worker; with
   supervision on, the lost worker is replaced within the hard wall and
   the retry lands on a live one — with it off, each wedge permanently
   shrinks the pool, and goodput collapses as the wedge rate grows. *)
let abl_supervision ~quick () =
  let module Server = Flexpath_server.Server in
  let module Protocol = Flexpath_server.Protocol in
  let module Client = Flexpath_server.Client in
  let module Metrics = Flexpath_server.Metrics in
  let module Monotime = Flexpath.Monotime in
  let mb = if quick then 1.0 else 2.0 in
  let env = env_for_mb mb in
  let request = Printf.sprintf "QUERY k=10 %s" q1_str in
  let clients = 8 and per_client = if quick then 12 else 30 in
  let hard_wall_ms = 250.0 in
  header "Ablation: worker supervision"
    (Printf.sprintf
       "%d retrying clients (retries=1, 500 ms budget), %d requests each, a fraction wedging \
        their worker (%.0f ms hard wall); goodput and tail latency, supervision on vs off"
       clients per_client hard_wall_ms)
    [ "served"; "p99-ms"; "req/s"; "lost" ];
  let retry =
    { Client.retries = 1; budget_ms = Some 500.0; base_backoff_ms = 20.0; max_backoff_ms = 100.0 }
  in
  List.iter
    (fun (wedge_pct, supervise) ->
      let cfg =
        {
          Server.default_config with
          Server.workers = 4;
          queue_depth = 64;
          hard_wall_ms;
          supervise;
          (* Quarantining off: every wedge uses the same query shape,
             and this table isolates loss recovery. *)
          quarantine_strikes = 0;
        }
      in
      match Server.create cfg ~env with
      | Error e -> failwith (Flexpath.Error.to_string e)
      | Ok srv ->
        let d = Domain.spawn (fun () -> Server.serve srv) in
        Fun.protect
          ~finally:(fun () ->
            Failpoint.reset ();
            Server.stop srv;
            Domain.join d)
          (fun () ->
            let port = Server.port srv in
            let served = Atomic.make 0 in
            let latency_of = Array.make clients [] in
            let client id () =
              let rng = Random.State.make [| 0x5EED + id |] in
              let lat = ref [] in
              for _ = 1 to per_client do
                if Random.State.int rng 100 < wedge_pct then
                  ignore (Failpoint.activate_n "worker_wedge" 1);
                let clock = Monotime.create () in
                (match Client.run ~rng ~port ~retry [ request ] with
                | Ok [ ((Protocol.Ok_ | Protocol.Partial), _) ] -> Atomic.incr served
                | Ok _ | Error _ -> ());
                lat := Monotime.elapsed_ms clock :: !lat
              done;
              latency_of.(id) <- !lat
            in
            let _, wall_ms =
              time (fun () ->
                  let ds = List.init clients (fun id -> Domain.spawn (client id)) in
                  List.iter Domain.join ds)
            in
            let latencies =
              Array.to_list latency_of |> List.concat |> List.sort Float.compare |> Array.of_list
            in
            let p99 = latencies.(min (Array.length latencies - 1)
                                    (int_of_float (0.99 *. float_of_int (Array.length latencies))))
            in
            let served = Atomic.get served in
            row
              (Printf.sprintf "wedge=%d%% sup=%s" wedge_pct (if supervise then "on" else "off"))
              [
                string_of_int served;
                ms p99;
                Printf.sprintf "%.0f" (float_of_int served /. (wall_ms /. 1000.0));
                string_of_int (Metrics.snapshot (Server.metrics srv)).Metrics.lost;
              ]))
    [ (0, true); (0, false); (1, true); (1, false); (5, true); (5, false) ]

(* Live ingestion (DESIGN.md §4h): write throughput on the WAL-durable
   path, query tail latency while the background merge domain runs,
   and the staleness the merge cadence actually delivers.  Besides the
   table, the numbers land in BENCH_ingest.json so regressions show up
   in review diffs. *)
let abl_ingest ~quick () =
  let module Server = Flexpath_server.Server in
  let module Protocol = Flexpath_server.Protocol in
  let module Client = Flexpath_server.Client in
  let module Metrics = Flexpath_server.Metrics in
  let module Ingest = Flexpath.Ingest in
  let module Monotime = Flexpath.Monotime in
  let dir = Filename.temp_file "flexpath_bench_ingest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let snap = Filename.concat dir "snap.fxe" in
  let wal = Filename.concat dir "wal.log" in
  let merge_interval_ms = 200.0 in
  let cfg =
    {
      Server.default_config with
      Server.workers = 4;
      queue_depth = 64;
      ingest =
        Some { (Server.ingest_defaults ~wal) with Server.merge_interval_ms; write_lane = 8 };
      snapshot = Some snap;
    }
  in
  let env =
    match Ingest.empty () with Ok c -> Ingest.env c | Error e -> failwith (Flexpath.Error.to_string e)
  in
  let doc_body n =
    Printf.sprintf
      "<article><title>bench %d</title><section><paragraph>flexible xml querying with full text \
       search revision %d</paragraph><paragraph>structural relaxation benchmark \
       payload</paragraph></section></article>"
      n n
  in
  let percentile sorted p =
    if Array.length sorted = 0 then 0.0
    else sorted.(min (Array.length sorted - 1) (int_of_float (p /. 100.0 *. float_of_int (Array.length sorted))))
  in
  match Server.create cfg ~env with
  | Error e -> failwith (Flexpath.Error.to_string e)
  | Ok srv ->
    let d = Domain.spawn (fun () -> Server.serve srv) in
    let result =
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          Domain.join d;
          (try
             Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
             Unix.rmdir dir
           with Sys_error _ | Unix.Unix_error _ -> ()))
        (fun () ->
          let port = Server.port srv in
          header "Ablation: live ingestion"
            (Printf.sprintf
               "WAL-durable ingest throughput, then mixed traffic (2 writers, 4 readers) under a \
                %.0f ms merge cadence: query latency and staleness percentiles"
               merge_interval_ms)
            [ "value" ];
          (* Phase 1: pure ingest throughput on one connection. *)
          let n_docs = if quick then 150 else 600 in
          let retry = Client.default_retry in
          let bytes = ref 0 in
          let (), ingest_wall_ms =
            time (fun () ->
                let reqs =
                  List.init n_docs (fun i ->
                      let xml = doc_body i in
                      bytes := !bytes + String.length xml;
                      Client.ingest_request ~id:(Printf.sprintf "d%d" (i mod 256)) xml)
                in
                match Client.run_requests ~port ~retry reqs with
                | Ok _ -> ()
                | Error (f, _) -> failwith (Client.failure_to_string f))
          in
          let docs_per_s = float_of_int n_docs /. (ingest_wall_ms /. 1000.0) in
          row "ingest-docs/s" [ Printf.sprintf "%.0f" docs_per_s ];
          row "ingest-MB/s"
            [ Printf.sprintf "%.2f" (float_of_int !bytes /. 1048576.0 /. (ingest_wall_ms /. 1000.0)) ];
          (* Phase 2: mixed read/write traffic with background merges. *)
          let run_s = if quick then 3.0 else 8.0 in
          let clock = Monotime.create () in
          let running () = Monotime.elapsed_ms clock < run_s *. 1000.0 in
          let writer w () =
            let n = ref 0 in
            while running () do
              incr n;
              let xml = doc_body !n in
              ignore
                (Client.run_requests ~port ~retry
                   [ Client.ingest_request ~id:(Printf.sprintf "m%d-%d" w (!n mod 64)) xml ])
            done
          in
          let query_lat = Array.make 4 [] in
          let reader r () =
            let lat = ref [] in
            let q = "QUERY k=5 //article[.contains(\"flexible\" and \"relaxation\")]" in
            while running () do
              let t = Monotime.create () in
              (match Client.run ~port ~retry [ q ] with
              | Ok [ ((Protocol.Ok_ | Protocol.Partial), _) ] ->
                lat := Monotime.elapsed_ms t :: !lat
              | Ok _ | Error _ -> ());
              Unix.sleepf 0.001
            done;
            query_lat.(r) <- !lat
          in
          let staleness = ref [] in
          let monitor () =
            let store = Option.get (Server.ingest_store srv) in
            while running () do
              staleness := Ingest.staleness_ms store :: !staleness;
              Unix.sleepf 0.01
            done
          in
          let writers = List.init 2 (fun w -> Domain.spawn (writer w)) in
          let readers = List.init 4 (fun r -> Domain.spawn (reader r)) in
          let mon = Domain.spawn monitor in
          List.iter Domain.join writers;
          List.iter Domain.join readers;
          Domain.join mon;
          let lat =
            Array.to_list query_lat |> List.concat |> List.sort Float.compare |> Array.of_list
          in
          let stale = List.sort Float.compare !staleness |> Array.of_list in
          let s = Metrics.snapshot (Server.metrics srv) in
          let q_p50 = percentile lat 50.0 and q_p99 = percentile lat 99.0 in
          let st_p50 = percentile stale 50.0
          and st_p95 = percentile stale 95.0
          and st_max = percentile stale 100.0 in
          row "query-p50-ms" [ ms q_p50 ];
          row "query-p99-ms" [ ms q_p99 ];
          row "staleness-p50" [ ms st_p50 ];
          row "staleness-p95" [ ms st_p95 ];
          row "staleness-max" [ ms st_max ];
          row "merges" [ string_of_int s.Metrics.merges ];
          Printf.sprintf
            "{\n\
            \  \"figure\": \"ingest\",\n\
            \  \"quick\": %b,\n\
            \  \"merge_interval_ms\": %.0f,\n\
            \  \"ingest\": { \"docs\": %d, \"bytes\": %d, \"wall_ms\": %.1f, \"docs_per_s\": %.1f },\n\
            \  \"mixed\": {\n\
            \    \"queries\": %d,\n\
            \    \"query_p50_ms\": %.3f,\n\
            \    \"query_p99_ms\": %.3f,\n\
            \    \"staleness_p50_ms\": %.1f,\n\
            \    \"staleness_p95_ms\": %.1f,\n\
            \    \"staleness_max_ms\": %.1f,\n\
            \    \"ingests\": %d,\n\
            \    \"merges\": %d\n\
            \  }\n\
             }\n"
            quick merge_interval_ms n_docs !bytes ingest_wall_ms docs_per_s (Array.length lat)
            q_p50 q_p99 st_p50 st_p95 st_max s.Metrics.ingests s.Metrics.merges)
    in
    let oc = open_out "BENCH_ingest.json" in
    output_string oc result;
    close_out oc;
    Printf.printf "  [artifact] BENCH_ingest.json written\n%!"

(* Sharded corpus (DESIGN.md §4i): scatter-gather query latency as the
   same document set spreads over 1, 4 and 16 shards, and the tail cost
   of degraded service — every query losing one shard mid-probe and
   settling for a sound PARTIAL.  The numbers land in BENCH_shard.json
   so regressions show up in review diffs. *)
let abl_shard ~quick () =
  let module Corpus = Flexpath.Corpus in
  let dir = Filename.temp_file "flexpath_bench_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let n_docs = if quick then 120 else 400 in
  let n_queries = if quick then 80 else 300 in
  let article seed =
    let rng = Xmark.Prng.create seed in
    let archetype =
      Xmark.Prng.pick rng
        [|
          Xmark.Articles.Exact;
          Xmark.Articles.Title_keywords;
          Xmark.Articles.Algo_elsewhere;
          Xmark.Articles.No_algorithm;
          Xmark.Articles.Keywords_only;
          Xmark.Articles.Irrelevant;
        |]
    in
    Xmldom.Xml.to_string (Xmark.Articles.article rng archetype seed)
  in
  let bodies = List.init n_docs (fun i -> (Printf.sprintf "d%d" i, article (7000 + i))) in
  let query_mix =
    List.map Xpath.parse_exn
      [
        "//article[.contains(\"xml\")]";
        "//article[./section[./algorithm and ./paragraph[.contains(\"xml\" and \"streaming\")]]]";
        "//section[./title]";
      ]
  in
  let percentile sorted p =
    if Array.length sorted = 0 then 0.0
    else
      sorted.(min (Array.length sorted - 1) (int_of_float (p /. 100.0 *. float_of_int (Array.length sorted))))
  in
  (* One guard governs both passes: run [n_queries] over the mix,
     arming the shard-loss failpoint before every query when
     [degrade].  Returns (p50, p99, partials). *)
  let measure corpus ~degrade =
    let lat = ref [] in
    let partials = ref 0 in
    for i = 0 to n_queries - 1 do
      if degrade then
        (match Flexpath.Failpoint.activate_n "shard_probe" 1 with
        | Ok () -> ()
        | Error e -> failwith e);
      let q = List.nth query_mix (i mod List.length query_mix) in
      let r, t =
        time (fun () ->
            match Corpus.query corpus ~use_cache:false ~k:10 q with
            | Ok r -> r
            | Error e -> failwith (Flexpath.Error.to_string e))
      in
      (match r.Corpus.completeness with Corpus.Partial _ -> incr partials | Corpus.Complete -> ());
      lat := t :: !lat
    done;
    Flexpath.Failpoint.reset ();
    let sorted = List.sort Float.compare !lat |> Array.of_list in
    (percentile sorted 50.0, percentile sorted 99.0, !partials)
  in
  header "Ablation: sharded corpus"
    (Printf.sprintf
       "Scatter-gather over N shards (%d docs, K=10, cache off): query latency healthy, then \
        degraded (one shard lost per query, sound PARTIAL)"
       n_docs)
    [ "p50-ms"; "p99-ms"; "deg-p50"; "deg-p99"; "partials" ];
  let cells =
    List.map
      (fun shards ->
        let prefix = Filename.concat dir (Printf.sprintf "c%d.fxe" shards) in
        (* Strikes never quarantine here: the degraded pass loses a
           shard on every query by design. *)
        match Corpus.open_corpus ~strike_threshold:max_int ~shards ~prefix () with
        | Error e -> failwith (Flexpath.Error.to_string e)
        | Ok corpus ->
          Fun.protect
            ~finally:(fun () -> Corpus.close corpus)
            (fun () ->
              List.iter
                (fun (id, xml) ->
                  match Corpus.ingest corpus ~id xml with
                  | Ok _ -> ()
                  | Error e -> failwith (Flexpath.Error.to_string e))
                bodies;
              let h_p50, h_p99, h_partials = measure corpus ~degrade:false in
              let d_p50, d_p99, d_partials = measure corpus ~degrade:true in
              row
                (Printf.sprintf "%d shard%s" shards (if shards = 1 then "" else "s"))
                [
                  ms h_p50;
                  ms h_p99;
                  ms d_p50;
                  ms d_p99;
                  Printf.sprintf "%d+%d" h_partials d_partials;
                ];
              Printf.sprintf
                "    { \"shards\": %d, \"healthy\": { \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
                 \"partials\": %d },\n\
                \      \"degraded\": { \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"partials\": %d } }"
                shards h_p50 h_p99 h_partials d_p50 d_p99 d_partials))
      [ 1; 4; 16 ]
  in
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let result =
    Printf.sprintf
      "{\n\
      \  \"figure\": \"shard\",\n\
      \  \"quick\": %b,\n\
      \  \"docs\": %d,\n\
      \  \"queries_per_pass\": %d,\n\
      \  \"k\": 10,\n\
      \  \"series\": [\n%s\n  ]\n}\n"
      quick n_docs n_queries
      (String.concat ",\n" cells)
  in
  let oc = open_out "BENCH_shard.json" in
  output_string oc result;
  close_out oc;
  Printf.printf "  [artifact] BENCH_shard.json written\n%!"

(* Replication (DESIGN.md §4l): what redundancy costs and what it buys.
   Query latency healthy vs losing one replica per query (failover keeps
   every answer COMPLETE), ingest throughput under sync vs async WAL
   shipping, and how long a follower that missed records takes to catch
   up from its primary.  The numbers land in BENCH_replica.json so
   regressions show up in review diffs. *)
let abl_replica ~quick () =
  let module Corpus = Flexpath.Corpus in
  let dir = Filename.temp_file "flexpath_bench_replica" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let n_docs = if quick then 80 else 300 in
  let n_queries = if quick then 60 else 200 in
  let article seed =
    let rng = Xmark.Prng.create seed in
    let archetype =
      Xmark.Prng.pick rng
        [|
          Xmark.Articles.Exact;
          Xmark.Articles.Title_keywords;
          Xmark.Articles.Algo_elsewhere;
          Xmark.Articles.No_algorithm;
          Xmark.Articles.Keywords_only;
          Xmark.Articles.Irrelevant;
        |]
    in
    Xmldom.Xml.to_string (Xmark.Articles.article rng archetype seed)
  in
  let bodies = List.init n_docs (fun i -> (Printf.sprintf "d%d" i, article (9000 + i))) in
  let query_mix =
    List.map Xpath.parse_exn
      [
        "//article[.contains(\"xml\")]";
        "//article[./section[./algorithm and ./paragraph[.contains(\"xml\" and \"streaming\")]]]";
        "//section[./title]";
      ]
  in
  let percentile sorted p =
    if Array.length sorted = 0 then 0.0
    else
      sorted.(min
                (Array.length sorted - 1)
                (int_of_float (p /. 100.0 *. float_of_int (Array.length sorted))))
  in
  let open_replicated ?ack_mode name =
    let prefix = Filename.concat dir name in
    match
      Corpus.open_corpus ?ack_mode ~strike_threshold:max_int ~replicas:2 ~shards:2 ~prefix ()
    with
    | Error e -> failwith (Flexpath.Error.to_string e)
    | Ok corpus -> corpus
  in
  let fill corpus =
    List.iter
      (fun (id, xml) ->
        match Corpus.ingest corpus ~id xml with
        | Ok _ -> ()
        | Error e -> failwith (Flexpath.Error.to_string e))
      bodies
  in
  (* Ingest throughput: sync ships every record through the follower's
     WAL before the ack; async acks on the primary alone and drains the
     queue afterwards (the drain is included in the throughput — the
     work doesn't disappear, it moves off the ack path). *)
  let ingest_rate ack_mode =
    let corpus = open_replicated ~ack_mode (Corpus.ack_mode_to_string ack_mode) in
    Fun.protect
      ~finally:(fun () -> Corpus.close corpus)
      (fun () ->
        let _, t_ms =
          time (fun () ->
              fill corpus;
              for ord = 0 to Corpus.shard_count corpus - 1 do
                Corpus.ship_pending corpus ord
              done)
        in
        float_of_int n_docs /. (t_ms /. 1000.0))
  in
  let sync_rate = ingest_rate Corpus.Sync in
  let async_rate = ingest_rate Corpus.Async in
  (* Query latency over a sync-replicated corpus: a healthy pass, then
     a pass losing one replica on every query — failover answers from
     the surviving copy, so partials must stay 0. *)
  let corpus = open_replicated "measure" in
  let q_healthy, q_lost, catchup =
    Fun.protect
      ~finally:(fun () -> Corpus.close corpus)
      (fun () ->
        fill corpus;
        let measure ~degrade =
          let lat = ref [] in
          let partials = ref 0 and failovers = ref 0 in
          for i = 0 to n_queries - 1 do
            if degrade then
              (match Failpoint.activate_n "shard_probe" 1 with
              | Ok () -> ()
              | Error e -> failwith e);
            let q = List.nth query_mix (i mod List.length query_mix) in
            let r, t =
              time (fun () ->
                  match Corpus.query corpus ~use_cache:false ~k:10 q with
                  | Ok r -> r
                  | Error e -> failwith (Flexpath.Error.to_string e))
            in
            (match r.Corpus.completeness with
            | Corpus.Partial _ -> incr partials
            | Corpus.Complete -> ());
            failovers := !failovers + r.Corpus.failovers;
            lat := t :: !lat
          done;
          Failpoint.reset ();
          let sorted = List.sort Float.compare !lat |> Array.of_list in
          (percentile sorted 50.0, percentile sorted 99.0, !partials, !failovers)
        in
        let healthy = measure ~degrade:false in
        let lost = measure ~degrade:true in
        (* Catch-up: kill shipping for one write so shard 0's follower
           falls out of sync, widen the gap with fresh documents it
           never sees, then time the snapshot-copy + WAL-tail-replay
           recovery. *)
        let fresh =
          let rec go i acc n =
            if n = 0 then List.rev acc
            else
              let id = Printf.sprintf "x%d" i in
              if Corpus.shard_of_id corpus id = 0 then go (i + 1) (id :: acc) (n - 1)
              else go (i + 1) acc n
          in
          go 0 [] (max 8 (n_docs / 4))
        in
        (match Failpoint.activate_n "replica_ship" 1 with
        | Ok () -> ()
        | Error e -> failwith e);
        List.iteri
          (fun i id ->
            match Corpus.ingest corpus ~id (article (12_000 + i)) with
            | Ok _ -> ()
            | Error e -> failwith (Flexpath.Error.to_string e))
          fresh;
        Failpoint.reset ();
        let behind =
          let h = (Corpus.health corpus).(0) in
          h.Corpus.h_replicas.(0).Corpus.rh_docs - h.Corpus.h_replicas.(1).Corpus.rh_docs
        in
        let _, catchup_ms = time (fun () -> ignore (Corpus.reload corpus ~replica:1 0)) in
        (healthy, lost, (behind, catchup_ms)))
  in
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let h_p50, h_p99, h_partials, h_failovers = q_healthy in
  let l_p50, l_p99, l_partials, l_failovers = q_lost in
  let behind, catchup_ms = catchup in
  header "Ablation: shard replication"
    (Printf.sprintf
       "2 shards x 2 replicas (%d docs, K=10, cache off): query latency healthy vs one replica \
        lost per query (failover, zero PARTIAL)"
       n_docs)
    [ "p50-ms"; "p99-ms"; "partials"; "failovers" ];
  row "healthy"
    [ ms h_p50; ms h_p99; string_of_int h_partials; string_of_int h_failovers ];
  row "replica-lost"
    [ ms l_p50; ms l_p99; string_of_int l_partials; string_of_int l_failovers ];
  header "Replication: ingest and catch-up"
    "WAL-shipping ack modes (docs/s includes the async drain), and follower catch-up from the \
     primary"
    [ "sync-docs/s"; "async-docs/s"; "behind"; "catchup-ms" ];
  row "replicas=2"
    [
      Printf.sprintf "%.0f" sync_rate;
      Printf.sprintf "%.0f" async_rate;
      string_of_int behind;
      ms catchup_ms;
    ];
  let result =
    Printf.sprintf
      "{\n\
      \  \"schema_version\": 1,\n\
      \  \"bench\": \"replica\",\n\
      \  \"quick\": %b,\n\
      \  \"docs\": %d,\n\
      \  \"queries_per_pass\": %d,\n\
      \  \"shards\": 2,\n\
      \  \"replicas\": 2,\n\
      \  \"query\": {\n\
      \    \"healthy\": { \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"partials\": %d, \"failovers\": \
       %d },\n\
      \    \"replica_lost\": { \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"partials\": %d, \
       \"failovers\": %d }\n\
      \  },\n\
      \  \"ingest\": { \"sync_docs_per_s\": %.1f, \"async_docs_per_s\": %.1f },\n\
      \  \"catchup\": { \"records_behind\": %d, \"ms\": %.3f }\n\
       }\n"
      quick n_docs n_queries h_p50 h_p99 h_partials h_failovers l_p50 l_p99 l_partials l_failovers
      sync_rate async_rate behind catchup_ms
  in
  let oc = open_out "BENCH_replica.json" in
  output_string oc result;
  close_out oc;
  Printf.printf "  [artifact] BENCH_replica.json written\n%!"

(* Holistic twig join (DESIGN.md §4k): the TwigStack-style physical
   operator against the binary structural-join pipeline, on identical
   plans returning identical answers.  Exact conjunctive plans take the
   operator's fast path (answers straight off the solution streams);
   relaxed-but-conjunctive plans still twig-filter before enumerating;
   plans with optional specs fall back to the pipeline, so their row
   doubles as a cost-of-selection control. *)
let abl_twig ~quick () =
  let mb = if quick then 2.0 else 100.0 in
  let env = env_for_mb mb in
  header "Ablation: holistic twig join"
    (Printf.sprintf
       "Binary pipeline vs holistic twig operator, same plans (%gMB); time in ms" mb)
    [ "binary"; "holistic"; "speedup"; "stream-elems" ];
  let bench_row name q enc =
    let penv = Env.penalty_env env q in
    let eenv = Env.exec_env env penv in
    let strategy = Joins.Exec.exact_strategy in
    let m = Joins.Exec.fresh_metrics () in
    let answers =
      Joins.Exec.run ~metrics:m ~executor:Joins.Exec.Auto eenv enc strategy
    in
    let _, tb =
      time_median (fun () -> Joins.Exec.run ~executor:Joins.Exec.Binary eenv enc strategy)
    in
    let _, th =
      time_median (fun () -> Joins.Exec.run ~executor:Joins.Exec.Auto eenv enc strategy)
    in
    let speedup = if th > 0.0 then tb /. th else 0.0 in
    row name
      [
        ms tb;
        ms th;
        Printf.sprintf "%.2fx" speedup;
        string_of_int m.Joins.Exec.stream_elements;
      ];
    Printf.sprintf
      "    { \"query\": %S, \"binary_ms\": %.3f, \"holistic_ms\": %.3f, \"speedup\": %.3f,\n\
      \      \"holistic_runs\": %d, \"fast_path\": %b, \"stream_elements\": %d, \"answers\": %d }"
      name tb th speedup m.Joins.Exec.holistic_runs
      (m.Joins.Exec.holistic_fast_paths > 0)
      m.Joins.Exec.stream_elements (List.length answers)
  in
  let cells = ref [] in
  let emit name q enc = cells := bench_row name q enc :: !cells in
  (* Q1-Q3 exact plans: the paper's workload, where the operator must win *)
  List.iter
    (fun (name, qs) ->
      let q = Xpath.parse_exn qs in
      emit name q (Joins.Encoded.of_ops_exn q []))
    queries;
  (* the deepest still-conjunctive relaxation of Q3 (twig-filtered but
     no fast path) and the first non-conjunctive one (falls back) *)
  let q3 = Xpath.parse_exn q3_str in
  let penv = Env.penalty_env env q3 in
  let chain = Relax.Space.sequence ~max_steps:32 penv in
  let encs =
    List.map (fun e -> Joins.Encoded.of_ops_exn q3 e.Relax.Space.ops) chain
  in
  (match List.filter Joins.Twig.applicable encs with
  | [] -> ()
  | conj -> emit "Q3-relaxed" q3 (List.nth conj (List.length conj - 1)));
  (match List.find_opt (fun e -> not (Joins.Twig.applicable e)) encs with
  | None -> ()
  | Some enc -> emit "Q3-fallback" q3 enc);
  let result =
    Printf.sprintf
      "{\n\
      \  \"schema_version\": 1,\n\
      \  \"bench\": \"twig\",\n\
      \  \"quick\": %b,\n\
      \  \"mb\": %g,\n\
      \  \"series\": [\n%s\n  ]\n}\n"
      quick mb
      (String.concat ",\n" (List.rev !cells))
  in
  let oc = open_out "BENCH_twig.json" in
  output_string oc result;
  close_out oc;
  Printf.printf "  [artifact] BENCH_twig.json written\n%!"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrates. *)

let micro () =
  let open Bechamel in
  let doc = Xmark.Auction.doc ~seed:5 ~items:100 () in
  let items = Doc.by_tag_name doc "item" in
  let texts = Doc.by_tag_name doc "text" in
  let q3 = Xpath.parse_exn q3_str in
  let preds = Tpq.Query.to_preds q3 in
  let xml_string = Xmldom.Xml.to_string (Doc.to_tree doc) in
  let tests =
    [
      Test.make ~name:"structural-join ad(item,text)"
        (Staged.stage (fun () -> ignore (Joins.Structural_join.ad_pairs doc ~anc:items ~desc:texts)));
      Test.make ~name:"closure of Q3" (Staged.stage (fun () -> ignore (Tpq.Closure.closure preds)));
      Test.make ~name:"core of Q3" (Staged.stage (fun () -> ignore (Tpq.Closure.core preds)));
      Test.make ~name:"xpath parse Q3" (Staged.stage (fun () -> ignore (Xpath.parse_exn q3_str)));
      Test.make ~name:"porter stem"
        (Staged.stage (fun () -> ignore (Fulltext.Stemmer.stem "relational")));
      Test.make ~name:"index build (100 items)"
        (Staged.stage (fun () -> ignore (Fulltext.Index.build doc)));
      Test.make ~name:"xml parse (100 items)"
        (Staged.stage (fun () -> ignore (Xmldom.Xml_parser.parse_exn xml_string)));
      Test.make ~name:"stats build (100 items)" (Staged.stage (fun () -> ignore (Stats.build doc)));
    ]
  in
  Printf.printf "\n=== Micro-benchmarks (Bechamel) ===\n%!";
  List.iter
    (fun test ->
      let clock = Toolkit.Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~quota:(Time.second 0.5) ~kde:None () in
      let raw = Benchmark.all cfg [ clock ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let all_figures =
  [
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("abl_bucketize", abl_bucketize);
    ("abl_pruning", abl_pruning);
    ("abl_estimator", abl_estimator);
    ("abl_schemes", abl_schemes);
    ("abl_governance", abl_governance);
    ("abl_snapshot", abl_snapshot);
    ("abl_approxml", abl_approxml);
    ("abl_serve", abl_serve);
    ("abl_cache", abl_cache);
    ("abl_supervision", abl_supervision);
    ("abl_ingest", abl_ingest);
    ("abl_shard", abl_shard);
    ("abl_replica", abl_replica);
    ("abl_twig", abl_twig);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let selected = List.filter (fun a -> a <> "quick" && a <> "micro") args in
  let micro_requested = List.mem "micro" args in
  if micro_requested && selected = [] then micro ()
  else begin
    Printf.printf "FleXPath benchmark harness — reproducing SIGMOD 2004 figures 9-16%s\n%!"
      (if quick then " (quick mode)" else "");
    List.iter
      (fun (name, f) -> if selected = [] || List.mem name selected then f ~quick ())
      all_figures;
    if selected = [] then micro ()
  end
