#!/usr/bin/env bash
# Two-process serving benchmark: a real `flexpath serve` process and
# the open-loop load generator driven against it over --port, so the
# client's fd budget is spent on client connections only and the top
# scale can reach 10k concurrent connections (in-process mode pays two
# fds per connection and caps out at about half the limit).
#
# CI-friendly: no fixed ports (the server picks an ephemeral port and
# writes it to a file), bounded runtime (a few minutes at the default
# scales), artifact schema-checked before the script exits, and the
# server is torn down on any exit path.
#
# Knobs (env vars): SCALES, RATE, DURATION_S, WARMUP_S, ARTICLES, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALES="${SCALES:-8,256,2048,10000}"
RATE="${RATE:-150}"
DURATION_S="${DURATION_S:-8}"
WARMUP_S="${WARMUP_S:-2}"
ARTICLES="${ARTICLES:-200}"
OUT="${OUT:-BENCH_serve.json}"

# The top scale needs an fd per connection on each side, plus listener,
# poller and snapshot overhead.
TOP="${SCALES##*,}"
NEED=$((TOP + 256))
if [ "$(ulimit -n)" -lt "$NEED" ]; then
  ulimit -n "$NEED" || {
    echo "bench_serve_10k: cannot raise 'ulimit -n' to $NEED" >&2
    exit 1
  }
fi

dune build --profile strict bin/flexpath_cli.exe
CLI=_build/default/bin/flexpath_cli.exe

PORT_FILE="$(mktemp)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -f "$PORT_FILE"
}
trap cleanup EXIT

"$CLI" serve --articles "$ARTICLES" --port 0 --port-file "$PORT_FILE" \
  --workers 4 --max-conns $((TOP + 64)) &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "bench_serve_10k: server died during startup" >&2; exit 1; }
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "bench_serve_10k: server never published its port" >&2; exit 1; }
PORT="$(cat "$PORT_FILE")"

"$CLI" bench serve --port "$PORT" --scales "$SCALES" --rate "$RATE" \
  --duration-s "$DURATION_S" --warmup-s "$WARMUP_S" -o "$OUT"
"$CLI" bench check "$OUT"
